package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/runner"
)

// Capabilities is what a worker advertises at registration. Empty Apps or
// Modes means "everything"; the coordinator only offers a worker attempts
// its capabilities cover.
type Capabilities struct {
	Apps       []string `json:"apps,omitempty"`
	Modes      []string `json:"modes,omitempty"`
	Slots      int      `json:"slots"`
	Lanes      int      `json:"lanes,omitempty"`
	GoMaxProcs int      `json:"gomaxprocs,omitempty"`
}

func (c Capabilities) matches(spec runner.ExperimentSpec) bool {
	if len(c.Apps) > 0 && !containsString(c.Apps, string(spec.App)) {
		return false
	}
	if len(c.Modes) > 0 && !containsString(c.Modes, spec.Mode) {
		return false
	}
	return true
}

func containsString(ss []string, want string) bool {
	for _, s := range ss {
		if s == want {
			return true
		}
	}
	return false
}

// Wire types shared between the coordinator and cmd/precision-worker.
// Durations travel as time.ParseDuration strings.
type (
	// RegisterRequest announces a worker. ReadAddr, when non-empty, is the
	// base URL of the worker's replica read listener — the worker will
	// serve GET <ReadAddr>/replica/{hash} for spec hashes it reports
	// holding on heartbeats, and the coordinator may route hot reads there
	// (DESIGN.md §11).
	RegisterRequest struct {
		Name         string       `json:"name"`
		ReadAddr     string       `json:"read_addr,omitempty"`
		Capabilities Capabilities `json:"capabilities"`
		// Arch is the worker's platform profile (roofline peaks, TDP) —
		// the energy/cost accounting input. Workers re-send the full
		// profile on every register, so a coordinator restart cannot
		// leave a stale or empty profile behind.
		Arch *arch.Spec `json:"arch,omitempty"`
	}
	// RegisterResponse assigns the worker its identity and cadences.
	RegisterResponse struct {
		WorkerID  string `json:"worker_id"`
		LeaseTTL  string `json:"lease_ttl"`
		Heartbeat string `json:"heartbeat"`
		PollWait  string `json:"poll_wait"`
	}
	// LeaseRequest long-polls for work.
	LeaseRequest struct {
		WorkerID string `json:"worker_id"`
		Wait     string `json:"wait,omitempty"`
	}
	// LeaseGrant hands one attempt to a worker under a deadline. TraceID
	// and ParentSpan are the trace context: the worker records its own
	// spans under them and ships snapshots back, so the coordinator can
	// stitch the worker timeline under the job's attempt span.
	LeaseGrant struct {
		LeaseID    string                `json:"lease_id"`
		JobID      string                `json:"job_id"`
		Attempt    int64                 `json:"attempt"`
		Spec       runner.ExperimentSpec `json:"spec"`
		SpecHash   string                `json:"spec_hash"`
		Deadline   time.Time             `json:"deadline"`
		LeaseTTL   string                `json:"lease_ttl"`
		TraceID    string                `json:"trace_id,omitempty"`
		ParentSpan string                `json:"parent_span,omitempty"`
	}
	// HeartbeatRequest extends the worker's active leases, relays per-lease
	// solver progress, and refreshes the replica read index: Held is the
	// full set of spec hashes the worker's replica store currently holds
	// (a replacement, not a delta — an eviction on the worker must fall
	// out of the index on the next beat).
	HeartbeatRequest struct {
		Leases []LeaseProgress `json:"leases"`
		Held   []string        `json:"held,omitempty"`
	}
	// LeaseProgress is one lease's progress report. Trace, when non-nil,
	// is a snapshot of the worker's span timeline for this lease so far —
	// long runs stream their solver spans incrementally; each snapshot
	// replaces the previous one.
	LeaseProgress struct {
		LeaseID string         `json:"lease_id"`
		Step    int64          `json:"step"`
		Total   int64          `json:"total"`
		Trace   *obs.TraceData `json:"trace,omitempty"`
	}
	// HeartbeatResponse lists leases the coordinator no longer honors; the
	// worker must cancel those runs.
	HeartbeatResponse struct {
		Expired []string `json:"expired,omitempty"`
	}
	// CompleteRequest uploads an attempt's terminal state: either the raw
	// runner.Result payload or an error with its classification.
	// Trace travels beside the Result, never inside it: the result
	// payload stays the byte-identical deterministic document, while the
	// worker's final span timeline rides the same upload.
	CompleteRequest struct {
		LeaseID   string          `json:"lease_id"`
		Result    json.RawMessage `json:"result,omitempty"`
		Error     string          `json:"error,omitempty"`
		ErrorKind string          `json:"error_kind,omitempty"`
		Trace     *obs.TraceData  `json:"trace,omitempty"`
	}
	// DeregisterRequest is the optional body of a deregister: a draining
	// worker reports how long its graceful wind-down took. Legacy workers
	// send no body.
	DeregisterRequest struct {
		DrainSeconds float64 `json:"drain_seconds,omitempty"`
	}
	// WorkerView is one worker's row in the fleet listing. Health is the
	// circuit-breaker state (healthy, probation, quarantined) and
	// HealthScore the EWMA badness behind it (0 = clean).
	WorkerView struct {
		ID           string       `json:"id"`
		Name         string       `json:"name"`
		ReadAddr     string       `json:"read_addr,omitempty"`
		Capabilities Capabilities `json:"capabilities"`
		// Arch names the worker's reported platform profile ("" when the
		// worker registered without one).
		Arch         string    `json:"arch,omitempty"`
		RegisteredAt time.Time `json:"registered_at"`
		LastSeenAgo  string    `json:"last_seen_ago"`
		ActiveLeases int       `json:"active_leases"`
		ReplicaHeld  int       `json:"replica_held"`
		Leased       uint64    `json:"leased"`
		Completed    uint64    `json:"completed"`
		Expired      uint64    `json:"expired"`
		Health       string    `json:"health"`
		HealthScore  float64   `json:"health_score"`
		// MetricsAge is the age of the coordinator's last successful
		// /metrics scrape from this worker ("" when never scraped); a
		// scrape older than the staleness window is excluded from
		// GET /metrics/fleet.
		MetricsAge string `json:"metrics_age,omitempty"`
		// JoulesTotal / CostDollarsTotal accumulate the modeled energy and
		// cloud cost of every result this worker uploaded.
		JoulesTotal      float64 `json:"joules_total"`
		CostDollarsTotal float64 `json:"cost_dollars_total"`
	}
	// FleetView is the GET /v1/workers payload. ReplicaHashes counts the
	// distinct spec hashes held by at least one worker replica.
	// ActiveLeases stays the final field: smoke scripts anchor on it being
	// last in the encoded JSON.
	FleetView struct {
		Workers       []WorkerView `json:"workers"`
		ReplicaHashes int          `json:"replica_hashes"`
		ActiveLeases  int          `json:"active_leases"`
	}
)

// CoordinatorConfig sizes the remote-fleet backend.
type CoordinatorConfig struct {
	// LeaseTTL is how long a lease lives without a heartbeat (default 15s).
	LeaseTTL time.Duration
	// Heartbeat is the cadence workers are told to report at (default
	// LeaseTTL/3).
	Heartbeat time.Duration
	// PollWait caps a lease long-poll (default 10s; a worker re-polls).
	PollWait time.Duration
	// VerifyN > 0 dispatches every Nth remotely-leased attempt to a second
	// executor and admits the result only if the final-state hashes are
	// bit-identical — the paper's determinism claim checked across nodes.
	VerifyN int
	// VerifyWait bounds how long a verification attempt may wait for a
	// second executor before it is skipped (default 4×LeaseTTL).
	VerifyWait time.Duration
	// WorkerTTL prunes workers unseen this long with no active leases
	// (default 4×LeaseTTL).
	WorkerTTL time.Duration
	// HedgeBudget > 0 enables hedged re-dispatch: the fraction of total
	// fleet slots that may run duplicate attempts concurrently (always at
	// least one when enabled). 0 disables hedging.
	HedgeBudget float64
	// HedgeAfter floors the hedge deadline: a lease never hedges before
	// running this long, even when the shape's p99 is lower (default
	// LeaseTTL/2).
	HedgeAfter time.Duration
	// ProbeAfter is how long a quarantined worker waits before its
	// half-open probe lease (default 2×LeaseTTL).
	ProbeAfter time.Duration
	// HedgeRecord, when non-nil, is invoked once per hedged pair whose
	// both completions landed: match reports whether the state hashes were
	// bit-identical. The daemon wires it to the job journal.
	HedgeRecord func(jobID, specHash, stateHash, winner, loser string, match bool)
	// Obs, when non-nil, registers the fleet instruments.
	Obs *obs.Registry
	// Log, when non-nil, receives fleet log records.
	Log *obs.Logger
}

// Coordinator is the remote-fleet Backend: workers register over HTTP,
// long-poll for leases, heartbeat while running, and upload results. A
// lease whose deadline lapses is expired by the reaper and the attempt
// finishes with ErrLeaseExpired — the scheduler re-queues the job under its
// original ID, so a SIGKILL'd worker loses nothing. Uploads are admitted
// only if the payload round-trips the versioned spec hash.
//
// Fault points: "dispatch.lease.expire" force-expires a heartbeated lease,
// "dispatch.upload" corrupts an uploaded payload before verification.
type Coordinator struct {
	cfg CoordinatorConfig
	log *obs.Logger
	d   *Dispatcher

	workersGauge obs.Gauge
	workerLeases obs.GaugeVec   // label: worker name
	leaseEvents  obs.CounterVec // label: event
	heartbeats   obs.Counter
	verifyCtr    obs.CounterVec // label: outcome
	replicaGauge obs.Gauge
	healthGauge  obs.GaugeVec // label: state
	hedgeCtr     obs.CounterVec
	drainHist    *obs.Histogram

	runCtx context.Context

	hp healthParams

	mu            sync.Mutex
	workers       map[string]*workerState
	leases        map[string]*lease
	lat           *latTracker
	hedgeInflight int
	nextWorker    uint64
	nextLease     uint64
	takeSeq       uint64
	// replicas is the fleet read index: spec hash → workers whose replica
	// store holds that payload. Maintained from heartbeat Held reports;
	// rrSeq round-robins reads across holders so one hot hash spreads over
	// every replica instead of hammering the first.
	replicas map[string]map[string]*workerState
	rrSeq    uint64
	// profiles remembers each worker name's last reported arch/capability
	// fingerprint across registrations (it survives worker pruning —
	// worker IDs are fresh per register, names are the stable identity),
	// so a profile that silently changes between registrations is logged.
	profiles map[string]string
}

type workerState struct {
	id           string
	name         string
	readAddr     string
	caps         Capabilities
	arch         *arch.Spec
	registeredAt time.Time
	lastSeen     time.Time
	active       map[string]*lease
	held         map[string]struct{}
	health       *workerHealth

	leased, completed, expired uint64

	// scrape is the last successfully parsed /metrics scrape and when it
	// landed; a stale scrape ages out of the fleet merge but is kept for
	// the per-worker view.
	scrape    *obs.ParsedMetrics
	scrapedAt time.Time
	// joules / costDollars accumulate modeled energy and cost over every
	// result this worker uploaded.
	joules      float64
	costDollars float64
}

type lease struct {
	id       string
	worker   *workerState
	a        *Attempt
	granted  time.Time
	deadline time.Time
	verify   bool
	// probe marks a half-open lease granted to a quarantined worker; its
	// outcome settles the readmission decision.
	probe bool
	// hedge, once set, is the scoreboard shared with the duplicate
	// attempt the straggler defense fired for this lease.
	hedge *hedgeState
}

// NewCoordinator builds the fleet backend and registers it with d.
func NewCoordinator(d *Dispatcher, cfg CoordinatorConfig) *Coordinator {
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 15 * time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = cfg.LeaseTTL / 3
	}
	if cfg.PollWait <= 0 {
		cfg.PollWait = 10 * time.Second
	}
	if cfg.VerifyWait <= 0 {
		cfg.VerifyWait = 4 * cfg.LeaseTTL
	}
	if cfg.WorkerTTL <= 0 {
		cfg.WorkerTTL = 4 * cfg.LeaseTTL
	}
	if cfg.HedgeAfter <= 0 {
		cfg.HedgeAfter = cfg.LeaseTTL / 2
	}
	hp := defaultHealthParams(cfg.LeaseTTL)
	if cfg.ProbeAfter > 0 {
		hp.probeAfter = cfg.ProbeAfter
	}
	co := &Coordinator{
		cfg:      cfg,
		log:      cfg.Log,
		d:        d,
		hp:       hp,
		workers:  make(map[string]*workerState),
		leases:   make(map[string]*lease),
		lat:      newLatTracker(),
		replicas: make(map[string]map[string]*workerState),
		profiles: make(map[string]string),
	}
	if cfg.Obs != nil {
		co.workersGauge = cfg.Obs.Gauge("dispatch_workers_registered",
			"Remote workers currently registered with the coordinator.")
		co.workerLeases = cfg.Obs.GaugeVec("dispatch_worker_active_leases",
			"Active leases per remote worker.", "worker")
		co.leaseEvents = cfg.Obs.CounterVec("dispatch_leases_total",
			"Lease lifecycle events: granted, completed, expired, rejected_late, rejected_corrupt.", "event")
		co.heartbeats = cfg.Obs.Counter("dispatch_heartbeats_total",
			"Heartbeats received from remote workers.")
		co.verifyCtr = cfg.Obs.CounterVec("dispatch_verify_total",
			"Cross-node verification attempts by outcome (match, mismatch, skipped).", "outcome")
		co.replicaGauge = cfg.Obs.Gauge("dispatch_replica_hashes",
			"Distinct spec hashes held by at least one worker replica store.")
		co.healthGauge = cfg.Obs.GaugeVec("precisiond_worker_health",
			"Registered workers by circuit-breaker state.", "state")
		co.hedgeCtr = cfg.Obs.CounterVec("precisiond_hedges_total",
			"Hedged re-dispatch events: fired, won, lost, skipped, verified, mismatch.", "outcome")
		co.drainHist = cfg.Obs.Histogram("precisiond_worker_drain_seconds",
			"Graceful drain duration reported by deregistering workers.", obs.DurationBuckets)
	}
	d.Register(co)
	return co
}

// Name implements Backend.
func (co *Coordinator) Name() string { return "fleet" }

// Start implements Backend: the lease reaper. Worker traffic arrives over
// the HTTP handlers, mounted by internal/serve/api.
func (co *Coordinator) Start(ctx context.Context, d *Dispatcher) {
	co.runCtx = ctx
	interval := co.cfg.LeaseTTL / 8
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	d.Go(func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				co.reap(time.Now())
			}
		}
	})
	d.Go(func() {
		t := time.NewTicker(co.cfg.Heartbeat)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				co.scrapeWorkers(ctx)
			}
		}
	})
}

// scrapeTimeout bounds one worker /metrics fetch: a wedged worker costs
// one short stall on its own scrape slot, never the whole sweep.
const scrapeTimeout = 2 * time.Second

// scrapeWorkers pulls /metrics from every worker that advertises a read
// listener, on the heartbeat cadence. Scrapes run outside co.mu (a slow
// worker must not wedge lease traffic); a failed or unparseable scrape
// keeps the previous sample, which then ages out of the fleet merge after
// the staleness window.
func (co *Coordinator) scrapeWorkers(ctx context.Context) {
	type target struct {
		id   string
		addr string
	}
	co.mu.Lock()
	targets := make([]target, 0, len(co.workers))
	for id, ws := range co.workers {
		if ws.readAddr != "" {
			targets = append(targets, target{id, ws.readAddr + "/metrics"})
		}
	}
	co.mu.Unlock()
	for _, t := range targets {
		pm, err := co.scrapeOne(ctx, t.addr)
		if err != nil {
			co.log.Debug("worker metrics scrape failed",
				obs.Str("worker", t.id), obs.Str("url", t.addr), obs.Str("err", err.Error()))
			continue
		}
		now := time.Now()
		co.mu.Lock()
		if ws, ok := co.workers[t.id]; ok {
			ws.scrape = pm
			ws.scrapedAt = now
		}
		co.mu.Unlock()
	}
}

func (co *Coordinator) scrapeOne(ctx context.Context, url string) (*obs.ParsedMetrics, error) {
	ctx, cancel := context.WithTimeout(ctx, scrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	return obs.ParsePrometheus(resp.Body)
}

// staleness is the window beyond which a worker's last scrape no longer
// contributes to the fleet merge: a flapping worker's numbers fade instead
// of freezing into the aggregate forever.
func (co *Coordinator) staleness() time.Duration { return co.cfg.WorkerTTL }

// fleetScrapes snapshots the scrapes fresh enough to merge, as of now.
func (co *Coordinator) fleetScrapes(now time.Time) []*obs.ParsedMetrics {
	co.mu.Lock()
	defer co.mu.Unlock()
	out := make([]*obs.ParsedMetrics, 0, len(co.workers))
	for _, ws := range co.workers {
		if ws.scrape != nil && now.Sub(ws.scrapedAt) <= co.staleness() {
			out = append(out, ws.scrape)
		}
	}
	return out
}

// HandleFleetMetrics implements GET /metrics/fleet: the merged view of
// every fresh worker scrape, series summed by (name, labels).
func (co *Coordinator) HandleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	scrapes := co.fleetScrapes(time.Now())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("X-Fleet-Workers", fmt.Sprint(len(scrapes)))
	_ = obs.Federate(w, scrapes)
}

// reap expires overdue leases and prunes long-unseen idle workers.
func (co *Coordinator) reap(now time.Time) {
	co.mu.Lock()
	var overdue []*lease
	for _, l := range co.leases {
		if now.After(l.deadline) {
			overdue = append(overdue, l)
		}
	}
	var pruned []*workerState
	for id, w := range co.workers {
		if len(w.active) == 0 && now.Sub(w.lastSeen) > co.cfg.WorkerTTL {
			delete(co.workers, id)
			co.setHeldLocked(w, nil) // its replicas are unreachable now
			pruned = append(pruned, w)
		}
	}
	n := len(co.workers)
	replicaCount := len(co.replicas)
	co.mu.Unlock()
	if len(pruned) > 0 {
		co.replicaGauge.Set(int64(replicaCount))
	}
	for _, l := range overdue {
		co.expireLease(l.id, fmt.Errorf("worker %s missed heartbeats for lease %s (job %s): %w",
			l.worker.id, l.id, l.a.JobID, ErrLeaseExpired))
	}
	for _, w := range pruned {
		co.d.ClearWorkerScore(w.id)
		co.workersGauge.Set(int64(n))
		co.log.Info("pruned unresponsive worker",
			obs.Str("worker", w.id), obs.Str("name", w.name),
			obs.Str("unseen", now.Sub(w.lastSeen).Round(time.Millisecond).String()))
	}
	if len(pruned) > 0 {
		co.updateHealthGauge()
	}
	co.maybeHedge(now)
}

// updateHealthGauge recomputes the per-state worker counts.
func (co *Coordinator) updateHealthGauge() {
	counts := map[HealthState]int64{HealthHealthy: 0, HealthProbation: 0, HealthQuarantined: 0}
	co.mu.Lock()
	for _, ws := range co.workers {
		counts[ws.health.state]++
	}
	co.mu.Unlock()
	for state, n := range counts {
		co.healthGauge.With(string(state)).Set(n)
	}
}

// HealthyCapacity is the slot count of workers currently eligible for
// leases (healthy or probation). Campaign admission sheds load against it
// so a quarantine-shrunk fleet is not buried under bulk work.
func (co *Coordinator) HealthyCapacity() int {
	co.mu.Lock()
	defer co.mu.Unlock()
	n := 0
	for _, ws := range co.workers {
		if ws.health.state != HealthQuarantined {
			n += ws.caps.Slots
		}
	}
	return n
}

// expireLease revokes a lease and finishes its attempt with cause. The late
// upload that may still arrive gets 409 — the attempt has already been
// re-queued, so admitting it would complete the job twice. An expiry is a
// health event: the worker went dark mid-run.
func (co *Coordinator) expireLease(id string, cause error) {
	co.revokeLease(id, cause, "expired", true)
}

// requeueLease revokes a lease without blaming the worker — the drain path:
// a deregistering worker hands its remaining leases back deliberately.
func (co *Coordinator) requeueLease(id string, cause error) {
	co.revokeLease(id, cause, "requeued_drain", false)
}

func (co *Coordinator) revokeLease(id string, cause error, event string, penalize bool) {
	now := time.Now()
	co.mu.Lock()
	l, ok := co.leases[id]
	if !ok {
		co.mu.Unlock()
		return
	}
	delete(co.leases, id)
	delete(l.worker.active, id)
	if penalize {
		l.worker.expired++
		l.worker.health.observe(penExpiry, now)
		if l.probe {
			l.worker.health.probeResult(false, now)
		}
	}
	name, active := l.worker.name, len(l.worker.active)
	co.mu.Unlock()
	co.workerLeases.With(name).Set(int64(active))
	co.leaseEvents.With(event).Inc()
	co.updateHealthGauge()
	co.log.Warn("lease revoked",
		obs.Str("lease", id), obs.Str("worker", l.worker.id), obs.Str("event", event),
		obs.Str("job", l.a.JobID), obs.Str("cause", cause.Error()))
	l.a.finish(Outcome{Err: cause, Backend: co.Name(), Worker: l.worker.id})
	if l.hedge != nil {
		co.hedgeLanded(l, l.hedge, nil, l.worker.id)
	}
}

// setHeldLocked replaces a worker's replica-held set and reindexes;
// caller holds co.mu. Returns the new distinct-hash count.
func (co *Coordinator) setHeldLocked(ws *workerState, held []string) int {
	for h := range ws.held {
		if holders, ok := co.replicas[h]; ok {
			delete(holders, ws.id)
			if len(holders) == 0 {
				delete(co.replicas, h)
			}
		}
	}
	ws.held = make(map[string]struct{}, len(held))
	for _, h := range held {
		ws.held[h] = struct{}{}
		holders, ok := co.replicas[h]
		if !ok {
			holders = make(map[string]*workerState, 1)
			co.replicas[h] = holders
		}
		holders[ws.id] = ws
	}
	return len(co.replicas)
}

// ReplicaSource returns the replica read URL for hash on some worker that
// reported holding it — round-robin across holders so a hot hash spreads
// over the fleet — or false when no reachable replica exists. The URL
// serves the raw payload bytes; the caller (the cache's remote tier)
// verifies them against its recorded digest.
func (co *Coordinator) ReplicaSource(hash string) (string, bool) {
	co.mu.Lock()
	defer co.mu.Unlock()
	holders := co.replicas[hash]
	if len(holders) == 0 {
		return "", false
	}
	ids := make([]string, 0, len(holders))
	for id, ws := range holders {
		if ws.readAddr != "" {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return "", false
	}
	sortStrings(ids)
	co.rrSeq++
	ws := holders[ids[co.rrSeq%uint64(len(ids))]]
	return ws.readAddr + "/replica/" + hash, true
}

func sortStrings(ss []string) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j] < ss[j-1]; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}

// HandleRegister implements POST /v1/workers/register.
func (co *Coordinator) HandleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode register request: %v", err)
		return
	}
	if req.Capabilities.Slots <= 0 {
		req.Capabilities.Slots = 1
	}
	now := time.Now()
	co.mu.Lock()
	co.nextWorker++
	ws := &workerState{
		id:           fmt.Sprintf("worker-%03d", co.nextWorker),
		name:         req.Name,
		readAddr:     strings.TrimRight(req.ReadAddr, "/"),
		caps:         req.Capabilities,
		arch:         req.Arch,
		registeredAt: now,
		lastSeen:     now,
		active:       make(map[string]*lease),
		held:         make(map[string]struct{}),
		health:       newWorkerHealth(co.hp, now),
	}
	if ws.name == "" {
		ws.name = ws.id
	}
	// Worker IDs are fresh per registration; the name is the stable
	// identity. Compare the full reported profile against the last one
	// this name registered with — a change means the box under the name
	// is not what it was (different hardware, edited flags), which the
	// energy model and capability matcher both care about.
	fp := profileFingerprint(req.Capabilities, req.Arch)
	prev, seen := co.profiles[ws.name]
	co.profiles[ws.name] = fp
	co.workers[ws.id] = ws
	n := len(co.workers)
	co.mu.Unlock()
	// Energy tie-break input: modeled joules per slot from the arch profile
	// (TDP spread across the advertised slots). Among capability-equal idle
	// workers the board then leases to the cheapest one first; a worker
	// registering without a profile simply stays unscored.
	if req.Arch != nil && req.Arch.TDPWatts > 0 {
		co.d.SetWorkerScore(ws.id, req.Arch.TDPWatts/float64(ws.caps.Slots))
	}
	if seen && prev != fp {
		co.log.Warn("worker profile changed between registrations",
			obs.Str("worker", ws.id), obs.Str("name", ws.name),
			obs.Str("previous", prev), obs.Str("current", fp))
	}
	co.workersGauge.Set(int64(n))
	co.updateHealthGauge()
	archName := ""
	if req.Arch != nil {
		archName = req.Arch.Name
	}
	co.log.Info("worker registered",
		obs.Str("worker", ws.id), obs.Str("name", ws.name),
		obs.Str("slots", fmt.Sprint(ws.caps.Slots)),
		obs.Str("apps", fmt.Sprint(ws.caps.Apps)),
		obs.Str("modes", fmt.Sprint(ws.caps.Modes)),
		obs.Str("arch", archName))
	writeJSON(w, http.StatusOK, RegisterResponse{
		WorkerID:  ws.id,
		LeaseTTL:  co.cfg.LeaseTTL.String(),
		Heartbeat: co.cfg.Heartbeat.String(),
		PollWait:  co.cfg.PollWait.String(),
	})
}

// profileFingerprint canonicalizes a worker's reported capabilities + arch
// profile for change detection across registrations.
func profileFingerprint(caps Capabilities, spec *arch.Spec) string {
	b, _ := json.Marshal(struct {
		Caps Capabilities `json:"caps"`
		Arch *arch.Spec   `json:"arch,omitempty"`
	}{caps, spec})
	return string(b)
}

// HandleLease implements POST /v1/workers/lease: long-poll for one attempt
// the worker's capabilities cover. 204 when nothing matched within the
// wait; 404 for an unknown worker (it must re-register).
func (co *Coordinator) HandleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode lease request: %v", err)
		return
	}
	pollStart := time.Now()
	co.mu.Lock()
	ws, ok := co.workers[req.WorkerID]
	var probe, admit bool
	if ok {
		ws.lastSeen = pollStart
		probe, admit = ws.health.admissible(pollStart)
		if probe {
			ws.health.beginProbe()
		}
	}
	co.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "unknown worker %q", req.WorkerID)
		return
	}
	wait := co.cfg.PollWait
	if req.Wait != "" {
		if d, err := time.ParseDuration(req.Wait); err == nil && d > 0 && d < wait {
			wait = d
		}
	}
	if !admit {
		// Quarantined with no probe window open: hold the long-poll so the
		// worker doesn't hot-loop, then send it away empty.
		select {
		case <-r.Context().Done():
		case <-time.After(wait):
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), wait)
	defer cancel()
	a := co.d.Take(ctx, co.Name(), ws.id, func(a *Attempt) bool {
		return !a.LocalOnly && a.ExcludeWorker != ws.id && ws.caps.matches(a.Spec)
	})
	if a == nil {
		if probe {
			co.mu.Lock()
			ws.health.probeAborted(time.Now())
			co.mu.Unlock()
		}
		w.WriteHeader(http.StatusNoContent)
		return
	}

	now := time.Now()
	co.mu.Lock()
	if _, still := co.workers[ws.id]; !still {
		// Deregistered while polling: hand the attempt back to the board
		// via the expiry path so the scheduler re-queues it.
		co.mu.Unlock()
		a.finish(Outcome{Err: fmt.Errorf("worker %s deregistered before the grant: %w", ws.id, ErrLeaseExpired)})
		httpError(w, http.StatusNotFound, "unknown worker %q", ws.id)
		return
	}
	co.nextLease++
	l := &lease{
		id:       fmt.Sprintf("lease-%06d", co.nextLease),
		worker:   ws,
		a:        a,
		granted:  now,
		deadline: now.Add(co.cfg.LeaseTTL),
		probe:    probe,
	}
	co.takeSeq++
	if co.cfg.VerifyN > 0 && !a.shadow && co.takeSeq%uint64(co.cfg.VerifyN) == 0 {
		l.verify = true
	}
	co.leases[l.id] = l
	ws.active[l.id] = l
	ws.leased++
	active := len(ws.active)
	co.mu.Unlock()
	co.workerLeases.With(ws.name).Set(int64(active))
	co.leaseEvents.With("granted").Inc()
	a.setCancelLease(func(cause error) { co.expireLease(l.id, cause) })
	co.log.Debug("lease granted",
		obs.Str("lease", l.id), obs.Str("worker", ws.id), obs.Str("job", a.JobID),
		obs.Str("mode", a.Spec.Mode), obs.Str("verify", fmt.Sprint(l.verify)))
	writeJSON(w, http.StatusOK, LeaseGrant{
		LeaseID:    l.id,
		JobID:      a.JobID,
		Attempt:    a.N,
		Spec:       a.Spec,
		SpecHash:   a.Hash(),
		Deadline:   l.deadline,
		LeaseTTL:   co.cfg.LeaseTTL.String(),
		TraceID:    a.JobID,
		ParentSpan: fmt.Sprintf("attempt-%d", a.N),
	})
}

// HandleHeartbeat implements POST /v1/workers/{id}/heartbeat: refreshes the
// worker's lease deadlines, relays solver progress, and reports leases the
// coordinator has already expired so the worker cancels those runs.
func (co *Coordinator) HandleHeartbeat(w http.ResponseWriter, r *http.Request) {
	wid := r.PathValue("id")
	var req HeartbeatRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode heartbeat: %v", err)
		return
	}
	now := time.Now()
	type delivery struct {
		fn          func(step, total int)
		step, total int64
	}
	type traceDelivery struct {
		fn func(worker string, td obs.TraceData, uploadBytes int)
		td *obs.TraceData
	}
	var resp HeartbeatResponse
	var progress []delivery
	var traces []traceDelivery
	var injected []string
	co.mu.Lock()
	ws, ok := co.workers[wid]
	if !ok {
		co.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown worker %q", wid)
		return
	}
	// A beat arriving well past the advertised cadence means earlier beats
	// were dropped or delayed — a flap, scored but far below an expiry.
	flapped := now.Sub(ws.lastSeen) > co.cfg.Heartbeat*3/2
	if flapped {
		ws.health.observe(penFlap, now)
	}
	ws.lastSeen = now
	replicaCount := co.setHeldLocked(ws, req.Held)
	for _, hb := range req.Leases {
		l, ok := co.leases[hb.LeaseID]
		if !ok || l.worker != ws {
			resp.Expired = append(resp.Expired, hb.LeaseID)
			continue
		}
		if fault.Hit("dispatch.lease.expire") {
			injected = append(injected, hb.LeaseID)
			resp.Expired = append(resp.Expired, hb.LeaseID)
			continue
		}
		l.deadline = now.Add(co.cfg.LeaseTTL)
		if l.a.Progress != nil {
			progress = append(progress, delivery{l.a.Progress, hb.Step, hb.Total})
		}
		if l.a.OnWorkerTrace != nil && hb.Trace != nil {
			traces = append(traces, traceDelivery{l.a.OnWorkerTrace, hb.Trace})
		}
	}
	co.mu.Unlock()
	co.heartbeats.Inc()
	co.replicaGauge.Set(int64(replicaCount))
	for _, id := range injected {
		co.expireLease(id, fmt.Errorf("fault dispatch.lease.expire tripped: %w", ErrLeaseExpired))
	}
	for _, p := range progress {
		p.fn(int(p.step), int(p.total))
	}
	for _, t := range traces {
		t.fn(wid, *t.td, 0)
	}
	writeJSON(w, http.StatusOK, resp)
}

// HandleComplete implements POST /v1/workers/{id}/complete. A completion
// for an expired or unknown lease is rejected with 409 (the job was
// re-queued; admitting the upload would run it to completion twice), and a
// payload that does not round-trip the versioned spec hash is rejected with
// 422 and the attempt retried.
func (co *Coordinator) HandleComplete(w http.ResponseWriter, r *http.Request) {
	wid := r.PathValue("id")
	var req CompleteRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20)).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "decode completion: %v", err)
		return
	}
	now := time.Now()
	co.mu.Lock()
	ws, ok := co.workers[wid]
	if !ok {
		co.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown worker %q", wid)
		return
	}
	ws.lastSeen = now
	l, ok := co.leases[req.LeaseID]
	if !ok || l.worker != ws {
		co.mu.Unlock()
		co.leaseEvents.With("rejected_late").Inc()
		co.log.Warn("late completion rejected",
			obs.Str("lease", req.LeaseID), obs.Str("worker", wid))
		httpError(w, http.StatusConflict, "lease %q is not active (expired or unknown); result discarded", req.LeaseID)
		return
	}
	delete(co.leases, l.id)
	delete(ws.active, l.id)
	ws.completed++
	active := len(ws.active)
	co.mu.Unlock()
	co.workerLeases.With(ws.name).Set(int64(active))

	a := l.a
	// Graft the worker's final span timeline under the attempt before any
	// finish path runs: once the attempt finishes, the scheduler may
	// snapshot the job trace at any moment.
	if a.OnWorkerTrace != nil && req.Trace != nil {
		a.OnWorkerTrace(ws.id, *req.Trace, len(req.Result))
	}
	if req.Error != "" {
		co.leaseEvents.With("completed").Inc()
		err := &runner.Error{Kind: kindFromString(req.ErrorKind), Op: "remote run on " + ws.id, Err: errors.New(req.Error)}
		co.log.Debug("remote attempt failed",
			obs.Str("lease", l.id), obs.Str("job", a.JobID),
			obs.Str("kind", req.ErrorKind), obs.Str("error", req.Error))
		if l.probe {
			// A classified run error is the spec's fault, not the box's:
			// the worker proved responsive, which is what the probe asks.
			co.mu.Lock()
			ws.health.probeResult(true, now)
			co.mu.Unlock()
			co.updateHealthGauge()
		}
		a.finish(Outcome{Err: err, Backend: co.Name(), Worker: ws.id})
		if l.hedge != nil {
			co.hedgeLanded(l, l.hedge, nil, ws.id)
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}

	payload := []byte(req.Result)
	if fault.Hit("dispatch.upload") && len(payload) > 0 {
		payload = payload[:len(payload)/2] // torn upload
	}
	res, err := validateUpload(payload, a.Hash())
	if err != nil {
		co.leaseEvents.With("rejected_corrupt").Inc()
		co.log.Warn("upload rejected",
			obs.Str("lease", l.id), obs.Str("worker", ws.id),
			obs.Str("job", a.JobID), obs.Str("error", err.Error()))
		co.mu.Lock()
		ws.health.observe(penReject, now)
		if l.probe {
			ws.health.probeResult(false, now)
		}
		co.mu.Unlock()
		co.updateHealthGauge()
		a.finish(Outcome{
			Err:     &runner.Error{Kind: runner.KindTransient, Op: "verify upload from " + ws.id, Err: err},
			Backend: co.Name(), Worker: ws.id,
		})
		if l.hedge != nil {
			co.hedgeLanded(l, l.hedge, nil, ws.id)
		}
		httpError(w, http.StatusUnprocessableEntity, "result rejected: %v", err)
		return
	}
	co.leaseEvents.With("completed").Inc()

	// Energy/cost accounting: the worker's registered arch profile applied
	// to the measured counters. Rides outside Deterministic()/ResultHash,
	// so annotating the result cannot perturb the determinism contract.
	if ws.arch != nil {
		res.Energy = ComputeEnergy(*ws.arch, res)
		co.mu.Lock()
		ws.joules += res.Energy.Joules
		ws.costDollars += res.Energy.CostDollars
		co.mu.Unlock()
	}

	// Score the completion: latency against the fleet median for this
	// shape (judged before this sample joins the ring), then fold it in.
	dur := now.Sub(l.granted)
	shape := shapeOf(a.Spec)
	co.mu.Lock()
	pen := penGood
	if med, samples := co.lat.quantile(shape, 0.5); samples >= co.hp.minSlowSamples &&
		dur.Seconds() > med*co.hp.slowFactor {
		pen = penSlow
	}
	co.lat.observe(shape, dur)
	ws.health.observe(pen, now)
	if l.probe {
		ws.health.probeResult(pen == penGood, now)
	}
	co.mu.Unlock()
	co.updateHealthGauge()

	if l.verify {
		co.crossCheck(l, res)
	} else {
		a.finish(Outcome{Res: res, Backend: co.Name(), Worker: ws.id})
	}
	if l.hedge != nil {
		co.hedgeLanded(l, l.hedge, res, ws.id)
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// validateUpload parses an uploaded result and checks it round-trips the
// lease's versioned spec hash: the payload's spec re-normalizes and
// re-hashes to exactly the hash the work was leased under, and the runner's
// own recorded SpecHash agrees. Anything else is a corrupt or mismatched
// upload.
func validateUpload(payload []byte, wantHash string) (*runner.Result, error) {
	var res runner.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		return nil, fmt.Errorf("payload does not parse: %w", err)
	}
	n, err := res.Spec.Normalized()
	if err != nil {
		return nil, fmt.Errorf("payload spec invalid: %w", err)
	}
	h, err := n.Hash()
	if err != nil {
		return nil, fmt.Errorf("payload spec unhashable: %w", err)
	}
	if h != wantHash {
		return nil, fmt.Errorf("payload spec hash %s does not round-trip lease hash %s", h, wantHash)
	}
	if res.SpecHash != wantHash {
		return nil, fmt.Errorf("result records spec hash %s, lease granted %s", res.SpecHash, wantHash)
	}
	if res.StateHash == "" {
		return nil, errors.New("result carries no final-state hash")
	}
	return &res, nil
}

// crossCheck re-dispatches a sampled attempt to a different executor and
// admits the first result only if both final-state hashes are bit-identical
// — the paper's determinism claim, checked across nodes. A verification
// that finds no second executor within VerifyWait is skipped, not failed.
func (co *Coordinator) crossCheck(l *lease, first *runner.Result) {
	a, firstWorker := l.a, l.worker.id
	co.d.Go(func() {
		base := co.runCtx
		if base == nil {
			base = context.Background()
		}
		ctx, cancel := context.WithTimeout(base, co.cfg.VerifyWait)
		defer cancel()
		shadow := &Attempt{
			JobID:         a.JobID,
			Spec:          a.Spec,
			N:             a.N,
			ExcludeWorker: firstWorker,
			shadow:        true,
		}
		out := co.d.Do(ctx, shadow)
		switch {
		case out.Err != nil || out.Res == nil:
			co.verifyCtr.With("skipped").Inc()
			co.log.Warn("cross-node verification skipped",
				obs.Str("job", a.JobID), obs.Str("cause", fmt.Sprint(out.Err)))
			a.finish(Outcome{Res: first, Backend: co.Name(), Worker: firstWorker})
		case out.Res.StateHash == first.StateHash:
			co.verifyCtr.With("match").Inc()
			co.log.Debug("cross-node verification matched",
				obs.Str("job", a.JobID), obs.Str("first", firstWorker),
				obs.Str("second", out.Backend+"/"+out.Worker),
				obs.Str("state", first.StateHash))
			a.finish(Outcome{Res: first, Backend: co.Name(), Worker: firstWorker})
		default:
			co.verifyCtr.With("mismatch").Inc()
			co.log.Error("cross-node state hash divergence",
				obs.Str("job", a.JobID),
				obs.Str("first", firstWorker), obs.Str("first_state", first.StateHash),
				obs.Str("second", out.Backend+"/"+out.Worker), obs.Str("second_state", out.Res.StateHash))
			a.finish(Outcome{
				Err: &runner.Error{Kind: runner.KindPermanent, Op: "cross-node verification",
					Err: fmt.Errorf("state hash divergence: %s on %s vs %s on %s/%s",
						first.StateHash, firstWorker, out.Res.StateHash, out.Backend, out.Worker)},
				Backend: co.Name(), Worker: firstWorker,
			})
		}
	})
}

// VerifyDemotion executes spec once and shadow-runs it on a second
// executor that excludes the first, reporting the primary result and
// whether the two final-state hashes were bit-identical — the gate
// internal/serve/autotune requires before committing a precision
// demotion. It reuses the -verify-n cross-check machinery, so on a
// multi-node fleet the confirmation is cross-node. ctx bounds the whole
// probe; a probe that finds no second executor in time returns the
// primary result unverified (verified=false, err=nil), never an error —
// the demotion is simply not committed.
func (co *Coordinator) VerifyDemotion(ctx context.Context, spec runner.ExperimentSpec) (*runner.Result, bool, error) {
	first := co.d.Do(ctx, &Attempt{JobID: "autotune-probe", Spec: spec, N: 1, shadow: true})
	if first.Err != nil {
		return nil, false, first.Err
	}
	if first.Res == nil || first.Res.StateHash == "" {
		return nil, false, errors.New("dispatch: demotion probe returned no final-state hash")
	}
	shadow := co.d.Do(ctx, &Attempt{
		JobID: "autotune-probe", Spec: spec, N: 2,
		ExcludeWorker: first.Worker, shadow: true,
	})
	if shadow.Err != nil || shadow.Res == nil {
		co.verifyCtr.With("skipped").Inc()
		co.log.Warn("demotion shadow verification skipped",
			obs.Str("mode", spec.Mode), obs.Str("cause", fmt.Sprint(shadow.Err)))
		return first.Res, false, nil
	}
	if shadow.Res.StateHash != first.Res.StateHash {
		co.verifyCtr.With("mismatch").Inc()
		co.log.Error("demotion shadow diverged",
			obs.Str("mode", spec.Mode),
			obs.Str("first", first.Backend+"/"+first.Worker), obs.Str("first_state", first.Res.StateHash),
			obs.Str("second", shadow.Backend+"/"+shadow.Worker), obs.Str("second_state", shadow.Res.StateHash))
		return first.Res, false, nil
	}
	co.verifyCtr.With("match").Inc()
	co.log.Debug("demotion shadow verified",
		obs.Str("mode", spec.Mode),
		obs.Str("first", first.Backend+"/"+first.Worker),
		obs.Str("second", shadow.Backend+"/"+shadow.Worker),
		obs.Str("state", first.Res.StateHash))
	return first.Res, true, nil
}

// HandleDeregister implements POST /v1/workers/{id}/deregister: a graceful
// goodbye. Any leases the worker still holds are requeued synchronously —
// their attempts finish with ErrLeaseExpired before the response goes out,
// so the scheduler re-posts the jobs under their original IDs immediately
// instead of waiting for the TTL reaper. A draining worker reports its
// wind-down time in the optional body; deliberate handback is not a health
// event, so no expiry penalty is scored.
func (co *Coordinator) HandleDeregister(w http.ResponseWriter, r *http.Request) {
	wid := r.PathValue("id")
	var req DeregisterRequest
	_ = json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req) // body optional
	co.mu.Lock()
	ws, ok := co.workers[wid]
	if !ok {
		co.mu.Unlock()
		httpError(w, http.StatusNotFound, "unknown worker %q", wid)
		return
	}
	delete(co.workers, wid)
	var held []string
	for id := range ws.active {
		held = append(held, id)
	}
	replicaCount := co.setHeldLocked(ws, nil)
	n := len(co.workers)
	co.mu.Unlock()
	for _, id := range held {
		co.requeueLease(id, fmt.Errorf("worker %s deregistered: %w", wid, ErrLeaseExpired))
	}
	co.d.ClearWorkerScore(wid)
	co.workersGauge.Set(int64(n))
	co.replicaGauge.Set(int64(replicaCount))
	co.updateHealthGauge()
	if req.DrainSeconds > 0 {
		co.drainHist.Observe(req.DrainSeconds)
	}
	co.log.Info("worker deregistered",
		obs.Str("worker", wid), obs.Str("name", ws.name),
		obs.Str("requeued", fmt.Sprint(len(held))),
		obs.Str("drain_seconds", fmt.Sprintf("%.3f", req.DrainSeconds)))
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// HandleList implements GET /v1/workers: the fleet view.
func (co *Coordinator) HandleList(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	co.mu.Lock()
	view := FleetView{Workers: make([]WorkerView, 0, len(co.workers))}
	for _, ws := range co.workers {
		wv := WorkerView{
			ID:               ws.id,
			Name:             ws.name,
			ReadAddr:         ws.readAddr,
			Capabilities:     ws.caps,
			RegisteredAt:     ws.registeredAt,
			LastSeenAgo:      now.Sub(ws.lastSeen).Round(time.Millisecond).String(),
			ActiveLeases:     len(ws.active),
			ReplicaHeld:      len(ws.held),
			Leased:           ws.leased,
			Completed:        ws.completed,
			Expired:          ws.expired,
			Health:           string(ws.health.state),
			HealthScore:      roundScore(ws.health.score),
			JoulesTotal:      ws.joules,
			CostDollarsTotal: ws.costDollars,
		}
		if ws.arch != nil {
			wv.Arch = ws.arch.Name
		}
		if ws.scrape != nil {
			wv.MetricsAge = now.Sub(ws.scrapedAt).Round(time.Millisecond).String()
		}
		view.Workers = append(view.Workers, wv)
		view.ActiveLeases += len(ws.active)
	}
	view.ReplicaHashes = len(co.replicas)
	co.mu.Unlock()
	sortWorkerViews(view.Workers)
	writeJSON(w, http.StatusOK, view)
}

func sortWorkerViews(ws []WorkerView) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].ID < ws[j-1].ID; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

// kindFromString parses a worker-reported error classification; anything
// unrecognized degrades to transient (retried, never silently dropped).
func kindFromString(s string) runner.Kind {
	switch s {
	case "permanent":
		return runner.KindPermanent
	case "timeout":
		return runner.KindTimeout
	case "numerical":
		return runner.KindNumerical
	default:
		return runner.KindTransient
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
