// Package spectral provides the nodal spectral-element machinery the SELF
// mini-app is built on: Legendre polynomials, Gauss and Gauss–Lobatto
// quadrature, barycentric Lagrange interpolation, collocation derivative
// matrices, and modal cutoff filters, following Kopriva's formulation (the
// reference the paper cites for SELF).
//
// Node and matrix construction always runs in float64 — it happens once per
// run and its accuracy anchors everything downstream; the solver casts the
// resulting operators to its compute precision.
package spectral

import (
	"fmt"
	"math"
)

// LegendreP evaluates the Legendre polynomial P_n and its derivative at x
// using the stable three-term recurrence.
func LegendreP(n int, x float64) (p, dp float64) {
	switch n {
	case 0:
		return 1, 0
	case 1:
		return x, 1
	}
	pm2, pm1 := 1.0, x
	dm2, dm1 := 0.0, 1.0
	for k := 2; k <= n; k++ {
		fk := float64(k)
		p = ((2*fk-1)*x*pm1 - (fk-1)*pm2) / fk
		dp = dm2 + (2*fk-1)*pm1
		pm2, pm1 = pm1, p
		dm2, dm1 = dm1, dp
	}
	return pm1, dm1
}

// GaussLobatto returns the n+1 Gauss–Lobatto–Legendre nodes and quadrature
// weights on [-1, 1] for polynomial order n ≥ 1. GLL quadrature integrates
// polynomials up to degree 2n-1 exactly; the endpoints ±1 are included,
// which is what lets spectral elements share interface nodes.
func GaussLobatto(n int) (nodes, weights []float64, err error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("spectral: Gauss-Lobatto order %d < 1", n)
	}
	np := n + 1
	nodes = make([]float64, np)
	weights = make([]float64, np)
	nodes[0], nodes[n] = -1, 1
	nn := float64(n * (n + 1))
	// Interior nodes: roots of P'_n via Newton with the elegant identity
	// d/dx[(1-x²)P'_n] = -n(n+1)P_n.
	for k := 1; k < n; k++ {
		x := -math.Cos(math.Pi * float64(k) / float64(n))
		for iter := 0; iter < 100; iter++ {
			p, dp := LegendreP(n, x)
			f := (1 - x*x) * dp
			step := f / (nn * p)
			x += step
			if math.Abs(step) < 1e-15 {
				break
			}
		}
		nodes[k] = x
	}
	// Symmetrize: average mirror pairs to kill Newton drift.
	for k := 0; k <= n/2; k++ {
		m := (nodes[k] - nodes[n-k]) / 2
		nodes[k], nodes[n-k] = m, -m
	}
	for k := 0; k <= n; k++ {
		p, _ := LegendreP(n, nodes[k])
		weights[k] = 2 / (nn * p * p)
	}
	return nodes, weights, nil
}

// GaussLegendre returns the n-point Gauss–Legendre nodes and weights on
// [-1, 1] (exact through degree 2n-1, endpoints excluded).
func GaussLegendre(n int) (nodes, weights []float64, err error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("spectral: Gauss-Legendre count %d < 1", n)
	}
	nodes = make([]float64, n)
	weights = make([]float64, n)
	for k := 0; k < n; k++ {
		// Chebyshev-flavoured initial guess.
		x := -math.Cos(math.Pi * (float64(k) + 0.75) / (float64(n) + 0.5))
		var p, dp float64
		for iter := 0; iter < 100; iter++ {
			p, dp = LegendreP(n, x)
			step := p / dp
			x -= step
			if math.Abs(step) < 1e-15 {
				break
			}
		}
		_, dp = LegendreP(n, x)
		nodes[k] = x
		weights[k] = 2 / ((1 - x*x) * dp * dp)
	}
	for k := 0; k <= (n-1)/2; k++ {
		m := (nodes[k] - nodes[n-1-k]) / 2
		nodes[k], nodes[n-1-k] = m, -m
		w := (weights[k] + weights[n-1-k]) / 2
		weights[k], weights[n-1-k] = w, w
	}
	return nodes, weights, nil
}

// BarycentricWeights returns the barycentric interpolation weights of the
// node set.
func BarycentricWeights(nodes []float64) []float64 {
	n := len(nodes)
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				w[i] *= nodes[i] - nodes[j]
			}
		}
		w[i] = 1 / w[i]
	}
	return w
}

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) Matrix {
	return Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// MulVec computes y = M·x.
func (m Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.Cols {
		panic("spectral: MulVec dimension mismatch")
	}
	y := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul computes the matrix product M·B.
func (m Matrix) Mul(b Matrix) Matrix {
	if m.Cols != b.Rows {
		panic("spectral: Mul dimension mismatch")
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*b.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// DerivativeMatrix returns the collocation derivative matrix D with
// D[i][j] = l'_j(x_i) for the Lagrange basis on the given nodes, built from
// barycentric weights with the negative-sum trick for the diagonal.
func DerivativeMatrix(nodes []float64) Matrix {
	n := len(nodes)
	w := BarycentricWeights(nodes)
	d := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		var diag float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := (w[j] / w[i]) / (nodes[i] - nodes[j])
			d.Set(i, j, v)
			diag -= v
		}
		d.Set(i, i, diag)
	}
	return d
}

// InterpolationMatrix returns the matrix mapping values on `nodes` to
// values at `targets` by Lagrange interpolation (barycentric form).
func InterpolationMatrix(nodes, targets []float64) Matrix {
	n, m := len(nodes), len(targets)
	w := BarycentricWeights(nodes)
	out := NewMatrix(m, n)
	for t := 0; t < m; t++ {
		x := targets[t]
		// Exact node hit → identity row.
		hit := -1
		for j, xj := range nodes {
			if x == xj {
				hit = j
				break
			}
		}
		if hit >= 0 {
			out.Set(t, hit, 1)
			continue
		}
		var denom float64
		for j := range nodes {
			denom += w[j] / (x - nodes[j])
		}
		for j := range nodes {
			out.Set(t, j, (w[j]/(x-nodes[j]))/denom)
		}
	}
	return out
}

// Vandermonde returns the Legendre Vandermonde matrix V[i][k] = P_k(x_i),
// the nodal↔modal change of basis.
func Vandermonde(nodes []float64) Matrix {
	n := len(nodes)
	v := NewMatrix(n, n)
	for i, x := range nodes {
		for k := 0; k < n; k++ {
			p, _ := LegendreP(k, x)
			v.Set(i, k, p)
		}
	}
	return v
}

// Invert returns the inverse of a (small) square matrix by Gauss–Jordan
// elimination with partial pivoting.
func Invert(m Matrix) (Matrix, error) {
	if m.Rows != m.Cols {
		return Matrix{}, fmt.Errorf("spectral: cannot invert %dx%d", m.Rows, m.Cols)
	}
	n := m.Rows
	a := NewMatrix(n, 2*n)
	for i := 0; i < n; i++ {
		copy(a.Data[i*2*n:i*2*n+n], m.Data[i*n:(i+1)*n])
		a.Set(i, n+i, 1)
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, best := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				pivot, best = r, v
			}
		}
		if best == 0 {
			return Matrix{}, fmt.Errorf("spectral: singular matrix")
		}
		if pivot != col {
			for j := 0; j < 2*n; j++ {
				a.Data[col*2*n+j], a.Data[pivot*2*n+j] = a.Data[pivot*2*n+j], a.Data[col*2*n+j]
			}
		}
		inv := 1 / a.At(col, col)
		for j := 0; j < 2*n; j++ {
			a.Data[col*2*n+j] *= inv
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < 2*n; j++ {
				a.Data[r*2*n+j] -= f * a.Data[col*2*n+j]
			}
		}
	}
	out := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		copy(out.Data[i*n:(i+1)*n], a.Data[i*2*n+n:(i+1)*2*n])
	}
	return out, nil
}

// CutoffFilter builds the modal exponential cutoff filter F = V Λ V⁻¹ on
// the given nodes: modes up to cutoff pass untouched, higher modes are
// damped as exp(-alpha ((k-kc)/(N-kc))^order). This is the spectral
// stabilisation SELF applies in lieu of explicit dissipation.
func CutoffFilter(nodes []float64, cutoff int, alpha float64, order int) (Matrix, error) {
	n := len(nodes) - 1 // polynomial order
	if cutoff < 0 || cutoff > n {
		return Matrix{}, fmt.Errorf("spectral: filter cutoff %d outside [0,%d]", cutoff, n)
	}
	v := Vandermonde(nodes)
	vinv, err := Invert(v)
	if err != nil {
		return Matrix{}, err
	}
	lam := NewMatrix(n+1, n+1)
	for k := 0; k <= n; k++ {
		sigma := 1.0
		if k > cutoff && n > cutoff {
			eta := float64(k-cutoff) / float64(n-cutoff)
			sigma = math.Exp(-alpha * math.Pow(eta, float64(order)))
		}
		lam.Set(k, k, sigma)
	}
	return v.Mul(lam).Mul(vinv), nil
}
