package spectral

import (
	"math"
	"testing"
)

func TestLegendreKnownValues(t *testing.T) {
	cases := []struct {
		n       int
		x, p, d float64
	}{
		{0, 0.3, 1, 0},
		{1, 0.3, 0.3, 1},
		{2, 0.5, 0.5*3*0.25 - 0.5, 3 * 0.5}, // P2 = (3x²-1)/2, P2' = 3x
		{3, 1, 1, 6},                        // P_n(1)=1, P_n'(1)=n(n+1)/2
		{4, 1, 1, 10},
		{5, -1, -1, 15}, // P_n(-1)=(-1)^n, |P_n'(-1)|=n(n+1)/2
	}
	for _, c := range cases {
		p, d := LegendreP(c.n, c.x)
		if math.Abs(p-c.p) > 1e-14 || math.Abs(d-c.d) > 1e-13 {
			t.Errorf("P_%d(%g) = %g, %g; want %g, %g", c.n, c.x, p, d, c.p, c.d)
		}
	}
	// Orthogonality spot check with high-resolution trapezoid:
	// ∫ P_3 P_5 = 0, ∫ P_4² = 2/9.
	integ := func(f func(float64) float64) float64 {
		const n = 200000
		s := 0.0
		for i := 0; i <= n; i++ {
			x := -1 + 2*float64(i)/n
			w := 1.0
			if i == 0 || i == n {
				w = 0.5
			}
			s += w * f(x)
		}
		return s * 2 / n
	}
	if v := integ(func(x float64) float64 { p3, _ := LegendreP(3, x); p5, _ := LegendreP(5, x); return p3 * p5 }); math.Abs(v) > 1e-9 {
		t.Errorf("∫P3P5 = %g", v)
	}
	if v := integ(func(x float64) float64 { p4, _ := LegendreP(4, x); return p4 * p4 }); math.Abs(v-2.0/9) > 1e-9 {
		t.Errorf("∫P4² = %g, want %g", v, 2.0/9)
	}
}

func TestGaussLobattoKnown(t *testing.T) {
	// N=1: nodes ±1, weights 1.
	nodes, weights, err := GaussLobatto(1)
	if err != nil {
		t.Fatal(err)
	}
	if nodes[0] != -1 || nodes[1] != 1 || weights[0] != 1 || weights[1] != 1 {
		t.Errorf("GLL(1): %v %v", nodes, weights)
	}
	// N=2: {-1,0,1}, {1/3,4/3,1/3}.
	nodes, weights, err = GaussLobatto(2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, 0, 1}
	wantW := []float64{1.0 / 3, 4.0 / 3, 1.0 / 3}
	for i := range want {
		if math.Abs(nodes[i]-want[i]) > 1e-15 || math.Abs(weights[i]-wantW[i]) > 1e-14 {
			t.Errorf("GLL(2)[%d] = %g/%g", i, nodes[i], weights[i])
		}
	}
	// N=3 interior nodes ±1/√5.
	nodes, _, err = GaussLobatto(3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nodes[1]+1/math.Sqrt(5)) > 1e-14 {
		t.Errorf("GLL(3) interior node %g", nodes[1])
	}
	if _, _, err := GaussLobatto(0); err == nil {
		t.Error("GaussLobatto(0) accepted")
	}
}

func TestQuadratureExactness(t *testing.T) {
	for _, n := range []int{2, 4, 7, 12} {
		nodes, weights, err := GaussLobatto(n)
		if err != nil {
			t.Fatal(err)
		}
		// Sum of weights = 2; symmetry.
		var sum float64
		for i, w := range weights {
			sum += w
			if math.Abs(nodes[i]+nodes[n-i]) > 1e-14 {
				t.Errorf("GLL(%d) nodes asymmetric", n)
			}
		}
		if math.Abs(sum-2) > 1e-13 {
			t.Errorf("GLL(%d) weights sum %g", n, sum)
		}
		// Exact for monomials up to degree 2n-1.
		for deg := 0; deg <= 2*n-1; deg++ {
			var q float64
			for i, x := range nodes {
				q += weights[i] * math.Pow(x, float64(deg))
			}
			exact := 0.0
			if deg%2 == 0 {
				exact = 2 / float64(deg+1)
			}
			if math.Abs(q-exact) > 1e-12 {
				t.Errorf("GLL(%d) x^%d: %g want %g", n, deg, q, exact)
			}
		}
	}
	for _, n := range []int{1, 3, 6, 10} {
		nodes, weights, err := GaussLegendre(n)
		if err != nil {
			t.Fatal(err)
		}
		for deg := 0; deg <= 2*n-1; deg++ {
			var q float64
			for i, x := range nodes {
				q += weights[i] * math.Pow(x, float64(deg))
			}
			exact := 0.0
			if deg%2 == 0 {
				exact = 2 / float64(deg+1)
			}
			if math.Abs(q-exact) > 1e-12 {
				t.Errorf("GL(%d) x^%d: %g want %g", n, deg, q, exact)
			}
		}
	}
	if _, _, err := GaussLegendre(0); err == nil {
		t.Error("GaussLegendre(0) accepted")
	}
}

func TestDerivativeMatrixExactOnPolynomials(t *testing.T) {
	for _, n := range []int{3, 5, 8} {
		nodes, _, err := GaussLobatto(n)
		if err != nil {
			t.Fatal(err)
		}
		d := DerivativeMatrix(nodes)
		// Row sums vanish (derivative of constants).
		for i := 0; i < d.Rows; i++ {
			var s float64
			for j := 0; j < d.Cols; j++ {
				s += d.At(i, j)
			}
			if math.Abs(s) > 1e-12 {
				t.Errorf("D(%d) row %d sum %g", n, i, s)
			}
		}
		// Differentiate x^k exactly for k ≤ n.
		for k := 1; k <= n; k++ {
			f := make([]float64, n+1)
			for i, x := range nodes {
				f[i] = math.Pow(x, float64(k))
			}
			df := d.MulVec(f)
			for i, x := range nodes {
				want := float64(k) * math.Pow(x, float64(k-1))
				if math.Abs(df[i]-want) > 1e-10 {
					t.Errorf("D(%d) d/dx x^%d at node %d: %g want %g", n, k, i, df[i], want)
				}
			}
		}
	}
}

func TestInterpolationMatrix(t *testing.T) {
	nodes, _, err := GaussLobatto(6)
	if err != nil {
		t.Fatal(err)
	}
	targets := []float64{-0.9, -0.3, 0.123, 0.77, nodes[2]}
	im := InterpolationMatrix(nodes, targets)
	// Interpolation reproduces degree-≤6 polynomials exactly.
	poly := func(x float64) float64 { return 1 + x*(2+x*(-1+x*(0.5+x*x))) }
	f := make([]float64, len(nodes))
	for i, x := range nodes {
		f[i] = poly(x)
	}
	got := im.MulVec(f)
	for i, x := range targets {
		if math.Abs(got[i]-poly(x)) > 1e-12 {
			t.Errorf("interp at %g: %g want %g", x, got[i], poly(x))
		}
	}
	// Exact node hit row is a unit row.
	if im.At(4, 2) != 1 {
		t.Error("exact node hit did not produce identity row")
	}
}

func TestMatrixOps(t *testing.T) {
	a := NewMatrix(2, 3)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(0, 2, 3)
	a.Set(1, 0, 4)
	a.Set(1, 1, 5)
	a.Set(1, 2, 6)
	y := a.MulVec([]float64{1, 1, 1})
	if y[0] != 6 || y[1] != 15 {
		t.Errorf("MulVec = %v", y)
	}
	b := NewMatrix(3, 2)
	for i := 0; i < 3; i++ {
		b.Set(i, 0, 1)
		b.Set(i, 1, float64(i))
	}
	c := a.Mul(b)
	if c.At(0, 0) != 6 || c.At(0, 1) != 8 || c.At(1, 0) != 15 || c.At(1, 1) != 17 {
		t.Errorf("Mul = %+v", c)
	}
	defer func() {
		if recover() == nil {
			t.Error("MulVec dimension mismatch did not panic")
		}
	}()
	a.MulVec([]float64{1})
}

func TestInvert(t *testing.T) {
	nodes, _, err := GaussLobatto(5)
	if err != nil {
		t.Fatal(err)
	}
	v := Vandermonde(nodes)
	vinv, err := Invert(v)
	if err != nil {
		t.Fatal(err)
	}
	id := v.Mul(vinv)
	for i := 0; i < id.Rows; i++ {
		for j := 0; j < id.Cols; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(id.At(i, j)-want) > 1e-11 {
				t.Errorf("V·V⁻¹[%d][%d] = %g", i, j, id.At(i, j))
			}
		}
	}
	// Singular matrix rejected.
	sing := NewMatrix(2, 2)
	sing.Set(0, 0, 1)
	sing.Set(0, 1, 2)
	sing.Set(1, 0, 2)
	sing.Set(1, 1, 4)
	if _, err := Invert(sing); err == nil {
		t.Error("Invert accepted a singular matrix")
	}
	if _, err := Invert(NewMatrix(2, 3)); err == nil {
		t.Error("Invert accepted a non-square matrix")
	}
}

func TestCutoffFilter(t *testing.T) {
	nodes, _, err := GaussLobatto(7)
	if err != nil {
		t.Fatal(err)
	}
	f, err := CutoffFilter(nodes, 4, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Low-order polynomials pass through unchanged.
	for deg := 0; deg <= 4; deg++ {
		u := make([]float64, len(nodes))
		for i, x := range nodes {
			u[i] = math.Pow(x, float64(deg))
		}
		fu := f.MulVec(u)
		for i := range u {
			if math.Abs(fu[i]-u[i]) > 1e-10 {
				t.Errorf("filter altered degree-%d mode at node %d: %g vs %g", deg, i, fu[i], u[i])
			}
		}
	}
	// The highest Legendre mode is strongly damped.
	u := make([]float64, len(nodes))
	for i, x := range nodes {
		p, _ := LegendreP(7, x)
		u[i] = p
	}
	fu := f.MulVec(u)
	var norm0, norm1 float64
	for i := range u {
		norm0 += u[i] * u[i]
		norm1 += fu[i] * fu[i]
	}
	if norm1 > 1e-10*norm0 {
		t.Errorf("top mode survived the filter: %g vs %g", norm1, norm0)
	}
	if _, err := CutoffFilter(nodes, 99, 16, 4); err == nil {
		t.Error("filter accepted out-of-range cutoff")
	}
}

func BenchmarkDerivativeMulVec(b *testing.B) {
	nodes, _, _ := GaussLobatto(7)
	d := DerivativeMatrix(nodes)
	f := make([]float64, len(nodes))
	for i, x := range nodes {
		f[i] = math.Sin(x)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.MulVec(f)
	}
}
