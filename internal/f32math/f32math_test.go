package f32math

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// ulpRel returns |got-want| in units of float32 ulps of want.
func ulpRel(got float32, want float64) float64 {
	w32 := float32(want)
	if w32 == got {
		return 0
	}
	ulp := math.Abs(float64(math.Nextafter32(w32, float32(math.Inf(1)))) - float64(w32))
	if ulp == 0 {
		return math.Inf(1)
	}
	return math.Abs(float64(got)-want) / ulp
}

func TestExp2Accuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	worst := 0.0
	for i := 0; i < 100000; i++ {
		x := float32(rng.Float64()*250 - 125)
		got := Exp2(x)
		want := math.Exp2(float64(x))
		if u := ulpRel(got, want); u > worst {
			worst = u
		}
	}
	if worst > 4 {
		t.Errorf("Exp2 worst error %.1f ulp", worst)
	}
}

func TestExp2Specials(t *testing.T) {
	if got := Exp2(0); got != 1 {
		t.Errorf("Exp2(0) = %g", got)
	}
	if got := Exp2(1); got != 2 {
		t.Errorf("Exp2(1) = %g", got)
	}
	if got := Exp2(10); got != 1024 {
		t.Errorf("Exp2(10) = %g", got)
	}
	if !math.IsInf(float64(Exp2(200)), 1) {
		t.Error("Exp2(200) did not overflow")
	}
	if Exp2(-200) != 0 {
		t.Error("Exp2(-200) did not underflow")
	}
	if n := Exp2(float32(math.NaN())); n == n {
		t.Error("Exp2(NaN) is not NaN")
	}
	// Subnormal results remain finite and ordered.
	if a, b := Exp2(-130), Exp2(-131); !(a > b && b >= 0) {
		t.Errorf("subnormal tail not monotone: %g %g", a, b)
	}
}

func TestLog2Accuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	worst := 0.0
	for i := 0; i < 100000; i++ {
		x := float32(math.Exp(rng.Float64()*40 - 20)) // log-uniform
		got := Log2(x)
		want := math.Log2(float64(x))
		var u float64
		if math.Abs(want) < 0.5 {
			// Near log2(1)=0 relative ulp is meaningless; use absolute.
			u = math.Abs(float64(got)-want) / 6e-8
		} else {
			u = ulpRel(got, want)
		}
		if u > worst {
			worst = u
		}
	}
	if worst > 6 {
		t.Errorf("Log2 worst error %.1f ulp", worst)
	}
}

func TestLog2Specials(t *testing.T) {
	if got := Log2(1); got != 0 {
		t.Errorf("Log2(1) = %g", got)
	}
	if got := Log2(8); got != 3 {
		t.Errorf("Log2(8) = %g", got)
	}
	if got := Log2(0.25); got != -2 {
		t.Errorf("Log2(0.25) = %g", got)
	}
	if !math.IsInf(float64(Log2(0)), -1) {
		t.Error("Log2(0) is not -Inf")
	}
	if n := Log2(-1); n == n {
		t.Error("Log2(-1) is not NaN")
	}
	if !math.IsInf(float64(Log2(float32(math.Inf(1)))), 1) {
		t.Error("Log2(+Inf) is not +Inf")
	}
	// Subnormal argument.
	sub := math.Float32frombits(1) // 2^-149
	if got := Log2(sub); math.Abs(float64(got)+149) > 0.01 {
		t.Errorf("Log2(2^-149) = %g", got)
	}
}

func TestPowMatchesFloat64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		x := float32(rng.Float64()*100 + 0.01)
		y := float32(rng.Float64()*8 - 4)
		got := Pow(x, y)
		want := math.Pow(float64(x), float64(y))
		rel := math.Abs(float64(got)-want) / math.Abs(want)
		if rel > 2e-6 {
			t.Fatalf("Pow(%g,%g) = %g, want %g (rel %g)", x, y, got, want, rel)
		}
	}
}

func TestPowSpecials(t *testing.T) {
	if Pow(5, 0) != 1 || Pow(1, 1e30) != 1 {
		t.Error("pow identities broken")
	}
	if Pow(0, 2) != 0 {
		t.Error("0^2 != 0")
	}
	if !math.IsInf(float64(Pow(0, -1)), 1) {
		t.Error("0^-1 is not +Inf")
	}
	if n := Pow(-2, 0.5); n == n {
		t.Error("(-2)^0.5 is not NaN")
	}
	if n := Pow(float32(math.NaN()), 2); n == n {
		t.Error("NaN^2 is not NaN")
	}
}

func TestExpLogInverse(t *testing.T) {
	if err := quick.Check(func(v float64) bool {
		x := float32(math.Mod(v, 60))
		if x != x {
			return true
		}
		back := Log(Exp(x))
		return math.Abs(float64(back-x)) < 1e-5*(1+math.Abs(float64(x)))
	}, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
	if got, want := Exp(1), float32(math.E); math.Abs(float64(got-want)) > 3e-7 {
		t.Errorf("Exp(1) = %g", got)
	}
	if got := Log(float32(math.E)); math.Abs(float64(got)-1) > 3e-7 {
		t.Errorf("Log(e) = %g", got)
	}
}

func TestSqrt(t *testing.T) {
	for _, x := range []float32{0, 1, 2, 100, 1e-30, 1e30} {
		if got, want := Sqrt(x), float32(math.Sqrt(float64(x))); got != want {
			t.Errorf("Sqrt(%g) = %g, want %g", x, got, want)
		}
	}
}

func BenchmarkPow32(b *testing.B) {
	var sink float32
	for i := 0; i < b.N; i++ {
		sink = Pow(1.5+float32(i&7), 1.4)
	}
	_ = sink
}

func BenchmarkPow64Promoted(b *testing.B) {
	// The "GNU profile": promote to float64, call libm, convert back.
	var sink float32
	for i := 0; i < b.N; i++ {
		sink = float32(math.Pow(float64(1.5+float32(i&7)), 1.4))
	}
	_ = sink
}

func TestPowAlgebraicProperties(t *testing.T) {
	// Pow(x, 1) ≈ x: the exp2(log2 x) round trip amplifies the log's ulp
	// error by |log2 x| ≤ 20 over this range, so allow ~1e-5 relative.
	if err := quick.Check(func(v float64) bool {
		x := float32(math.Abs(math.Mod(v, 1e6))) + 0.001
		got := Pow(x, 1)
		return math.Abs(float64(got-x)) <= 1e-5*float64(x)
	}, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
	// Pow(x, a+b) ≈ Pow(x,a)·Pow(x,b) within a few float32 ulps.
	if err := quick.Check(func(v, va, vb float64) bool {
		x := float32(math.Abs(math.Mod(v, 100))) + 0.5
		a := float32(math.Mod(va, 3))
		b := float32(math.Mod(vb, 3))
		if a != a || b != b {
			return true
		}
		lhs := float64(Pow(x, a+b))
		rhs := float64(Pow(x, a)) * float64(Pow(x, b))
		if rhs == 0 {
			return lhs == 0
		}
		return math.Abs(lhs-rhs)/math.Abs(rhs) < 1e-5
	}, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
