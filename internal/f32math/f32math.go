// Package f32math provides native single-precision transcendental
// functions (exp2, log2, pow, exp, log) built from float32 polynomial
// kernels.
//
// Go's math package computes everything through float64, which is exactly
// the "GNU profile" behaviour the paper observed making single-precision
// SELF *slower* than double (operands promoted through the double-precision
// libm with conversion traffic). These routines are the "Intel profile"
// counterpart: a single-precision math library whose cost scales with the
// narrower format. Accuracy is ~2 ulp of float32, plenty for a solver whose
// storage rounds to float32 anyway.
package f32math

import "math"

// Exp2 returns 2**x computed in single precision.
func Exp2(x float32) float32 {
	switch {
	case x != x: // NaN
		return x
	case x >= 128:
		return float32(math.Inf(1))
	case x <= -150:
		return 0
	}
	// Split x = k + f with k integer, f in [-0.5, 0.5].
	k := int32(x)
	f := x - float32(k)
	if f > 0.5 {
		k++
		f -= 1
	} else if f < -0.5 {
		k--
		f += 1
	}
	// Degree-7 polynomial for 2^f on [-0.5, 0.5] (ln2 Taylor terms); the
	// truncation error ≈ (ln2/2)^8/8! is far below float32 resolution, so
	// accuracy is limited by the ~2 ulp of polynomial rounding.
	const (
		c1 = 0.6931471805599453
		c2 = 0.2402265069591007
		c3 = 0.05550410866482158
		c4 = 0.009618129107628477
		c5 = 0.0013333558146428443
		c6 = 0.00015403530393381606
		c7 = 1.5252733804059838e-05
	)
	p := 1 + f*(float32(c1)+f*(float32(c2)+f*(float32(c3)+f*(float32(c4)+f*(float32(c5)+f*(float32(c6)+f*float32(c7)))))))
	// Scale by 2^k via exponent arithmetic; math.Float32frombits keeps it
	// in single precision throughout. Clamp k to the normal range; the
	// boundary checks above make |k| ≤ 150 so ldexp-style stepping is safe.
	return scaleByPowerOfTwo(p, int(k))
}

// scaleByPowerOfTwo returns p·2^k, stepping through the extremes so that
// overflow saturates to infinity and underflow degrades gracefully through
// the subnormal range.
func scaleByPowerOfTwo(p float32, k int) float32 {
	for k > 127 {
		p *= math.Float32frombits(254 << 23) // 2^127
		k -= 127
		if math.IsInf(float64(p), 0) {
			return p
		}
	}
	for k < -126 {
		p *= math.Float32frombits(1 << 23) // 2^-126
		k += 126
	}
	return p * math.Float32frombits(uint32(k+127)<<23)
}

// Log2 returns the base-2 logarithm of x computed in single precision.
func Log2(x float32) float32 {
	switch {
	case x != x:
		return x
	case x < 0:
		return float32(math.NaN())
	case x == 0:
		return float32(math.Inf(-1))
	case math.IsInf(float64(x), 1):
		return x
	}
	bits := math.Float32bits(x)
	exp := int32(bits>>23) - 127
	man := bits & 0x7fffff
	if exp == -127 { // subnormal: normalize
		n := 0
		for man&0x800000 == 0 {
			man <<= 1
			n++
		}
		man &= 0x7fffff
		exp = -126 - int32(n) + 0 // leading bit reached implicit position
	}
	// m in [1, 2).
	m := math.Float32frombits(man | 127<<23)
	// Reduce to [2^-0.5, 2^0.5) for a symmetric series.
	if m > 1.4142135 {
		m *= 0.5
		exp++
	}
	// log2(m) via atanh series: t = (m-1)/(m+1),
	// ln m = 2t(1 + t²/3 + t⁴/5 + t⁶/7).
	t := (m - 1) / (m + 1)
	t2 := t * t
	lnm := 2 * t * (1 + t2*(0.33333334+t2*(0.2+t2*0.14285715)))
	const invLn2 = 1.4426950408889634
	return float32(exp) + lnm*float32(invLn2)
}

// Pow returns x**y computed in single precision via exp2(y·log2(x)).
// It follows IEEE pow conventions for the special cases the solvers hit
// (positive finite bases); negative bases return NaN except for zero y.
func Pow(x, y float32) float32 {
	switch {
	case y == 0 || x == 1:
		return 1
	case x != x || y != y:
		return float32(math.NaN())
	case x < 0:
		return float32(math.NaN())
	case x == 0:
		if y < 0 {
			return float32(math.Inf(1))
		}
		return 0
	}
	return Exp2(y * Log2(x))
}

// Exp returns e**x in single precision.
func Exp(x float32) float32 {
	const log2e = 1.4426950408889634
	return Exp2(x * float32(log2e))
}

// Log returns the natural logarithm in single precision.
func Log(x float32) float32 {
	const ln2 = 0.6931471805599453
	return Log2(x) * float32(ln2)
}

// Sqrt returns √x; the hardware already provides single-precision square
// roots, so this simply narrows math.Sqrt (exact per IEEE: sqrt of a
// float32 computed in float64 and rounded once is correctly rounded).
func Sqrt(x float32) float32 { return float32(math.Sqrt(float64(x))) }
