package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/clamr"
	"repro/internal/metrics"
	"repro/internal/precision"
	"repro/internal/self"
)

// SweepConfig selects what PaperSweep regenerates.
type SweepConfig struct {
	// Scale is the problem scale (repro.QuickScale, …).
	Scale repro.Scale
	// IDs restricts the sweep to these experiment IDs; empty means all.
	IDs []string
	// OutDir, when non-empty, receives one CSV per figure experiment.
	OutDir string
}

// SweepResult summarises a sweep.
type SweepResult struct {
	// Ran counts completed experiments; Matched counts selected ones.
	Ran, Matched int
	// Interrupted reports that the context was cancelled mid-sweep; the
	// completed experiments' output and CSVs were flushed before return.
	Interrupted bool
}

// PaperSweep regenerates the paper's tables and figures — the experiment
// loop formerly inlined in cmd/paperbench — streaming formatted results to
// w as each experiment completes (so an interrupt loses nothing already
// printed). Cancelling ctx stops the sweep between solver steps: the
// in-flight experiment is abandoned, completed ones stay flushed, and the
// result reports Interrupted instead of an error.
func PaperSweep(ctx context.Context, cfg SweepConfig, w io.Writer) (SweepResult, error) {
	wanted := map[string]bool{}
	for _, id := range cfg.IDs {
		wanted[id] = true
	}
	if cfg.OutDir != "" {
		if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
			return SweepResult{}, err
		}
	}

	session := repro.NewSessionContext(ctx, cfg.Scale)
	var sr SweepResult
	for _, e := range repro.Experiments {
		if len(wanted) == 0 || wanted[e.ID] {
			sr.Matched++
		}
	}
	for _, e := range repro.Experiments {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		if ctx.Err() != nil {
			sr.Interrupted = true
			break
		}
		start := time.Now()
		ms := metrics.StartMemSample()
		out, err := session.RunExperiment(e.ID)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				sr.Interrupted = true
				break
			}
			return sr, fmt.Errorf("%s: %w", e.ID, err)
		}
		sr.Ran++
		allocB, allocN := ms.Delta()
		fmt.Fprintf(w, "════ %s — %s (%v, heap %s in %s objects) ════\n%s\n",
			e.ID, e.Title, time.Since(start).Round(time.Millisecond),
			metrics.Bytes(allocB), metrics.SI(allocN), out.Text)
		if cfg.OutDir != "" && len(out.Series) > 0 {
			path := filepath.Join(cfg.OutDir, e.ID+".csv")
			if err := writeSeriesCSV(path, out.Series); err != nil {
				return sr, fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Fprintf(w, "    (series written to %s)\n\n", path)
		}
	}
	if sr.Matched == 0 {
		return sr, fmt.Errorf("no experiments matched %v; known ids are listed by -list", cfg.IDs)
	}
	if sr.Interrupted {
		fmt.Fprintf(w, "―― sweep interrupted: %d of %d experiments completed; partial results flushed ――\n",
			sr.Ran, sr.Matched)
	}
	return sr, nil
}

func writeSeriesCSV(path string, series []analysis.Series) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := analysis.WriteCSV(f, series...); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SweepSpecs lists the mini-app runs underlying a full paper sweep at the
// given scale — the CLAMR performance runs (3 modes × 2 kernels), the CLAMR
// figure runs (3 modes) and the SELF runs (single and double) — as
// submittable specs. Submitting them to the experiment service reproduces
// (and caches) every measurement the tables and figures share.
func SweepSpecs(scale repro.Scale) []ExperimentSpec {
	s := repro.NewSession(scale)
	specs := make([]ExperimentSpec, 0, 11)
	for _, kernel := range []clamr.Kernel{clamr.KernelCell, clamr.KernelFace} {
		cfg, steps := s.CLAMRPerfConfig(kernel)
		for _, mode := range precision.Modes {
			specs = append(specs, CLAMRSpec(mode, cfg, steps, s.LineCutN()))
		}
	}
	figCfg, figSteps := s.CLAMRFigConfig()
	for _, mode := range precision.Modes {
		specs = append(specs, CLAMRSpec(mode, figCfg, figSteps, s.LineCutN()))
	}
	selfCfg, selfSteps := s.SELFStudyConfig(self.MathNative)
	for _, mode := range []precision.Mode{precision.Min, precision.Full} {
		specs = append(specs, SELFSpec(mode, selfCfg, selfSteps, s.LineCutN()))
	}
	return specs
}
