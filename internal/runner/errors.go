package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/precision"
)

// ErrNumericalFailure re-exports the solvers' numerical-guard sentinel at
// the layer that serves experiments: errors.Is(err, ErrNumericalFailure)
// identifies failures the precision-escalation ladder can cure.
var ErrNumericalFailure = precision.ErrNumericalFailure

// Kind classifies a failed run for the serving layer's retry policy. The
// classification decides what a retry can buy: nothing (Permanent), the
// same run again (Transient), nothing within this job's budget (Timeout),
// or the same problem at the next precision rung (Numerical).
type Kind int

const (
	// KindPermanent failures are deterministic and retry-proof: invalid
	// specs, incompatible checkpoints, marshalling bugs.
	KindPermanent Kind = iota
	// KindTransient failures are environmental — injected faults, I/O
	// hiccups, cancelled-by-shutdown — and worth retrying with backoff.
	KindTransient
	// KindTimeout marks a run that exceeded its deadline; its lanes must be
	// handed to the next job, not burned on a rerun of the same budget.
	KindTimeout
	// KindNumerical marks a numerical-guard abort; the escalation ladder
	// (precision.Mode.Next) may cure it.
	KindNumerical
)

// String names the kind for logs and stats.
func (k Kind) String() string {
	switch k {
	case KindTransient:
		return "transient"
	case KindTimeout:
		return "timeout"
	case KindNumerical:
		return "numerical"
	default:
		return "permanent"
	}
}

// Error is the typed failure Run returns and the queue's retry policy
// consumes: a kind, the failing operation, and the cause.
type Error struct {
	Kind Kind
	Op   string
	Err  error
}

// Error formats "runner: <op>: <cause> [<kind>]".
func (e *Error) Error() string {
	return fmt.Sprintf("runner: %s: %v [%s]", e.Op, e.Err, e.Kind)
}

// Unwrap exposes the cause for errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Classify maps any error onto a Kind. A wrapped *Error keeps its explicit
// kind; otherwise the sentinels decide: numerical-guard aborts escalate,
// deadline expiry is a timeout, cancellation and injected faults are
// transient, and everything else — notably invalid specs — is permanent
// and never retried.
func Classify(err error) Kind {
	var re *Error
	if errors.As(err, &re) {
		return re.Kind
	}
	switch {
	case errors.Is(err, precision.ErrNumericalFailure):
		return KindNumerical
	case errors.Is(err, context.DeadlineExceeded):
		return KindTimeout
	case errors.Is(err, context.Canceled):
		return KindTransient
	case errors.Is(err, fault.ErrInjected):
		return KindTransient
	default:
		return KindPermanent
	}
}

// wrapRunError types an execution failure by its sentinel classification.
func wrapRunError(op string, err error) error {
	return &Error{Kind: Classify(err), Op: op, Err: err}
}

// Escalation records one precision-escalation retry: the rung that failed,
// the rung the job was re-run at, the content address of the spec as it was
// originally submitted at the failing rung, and the guard failure that
// forced the climb. Stored in the result so a cache entry keyed by the
// submitted (lower-precision) spec honestly reports that its payload was
// computed one rung up.
type Escalation struct {
	FromMode     string `json:"from_mode"`
	ToMode       string `json:"to_mode"`
	FromSpecHash string `json:"from_spec_hash"`
	Reason       string `json:"reason"`
}

// NextPrecision returns the escalation ladder's next rung for a canonical
// mode spelling ("half" → "min" → "mixed" → "full"); ok is false at the top
// or for an unparsable mode.
func NextPrecision(mode string) (string, bool) {
	m, err := precision.Parse(mode)
	if err != nil {
		return "", false
	}
	next, ok := m.Next()
	if !ok {
		return "", false
	}
	return strings.ToLower(next.String()), true
}
