package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/obs"
)

// Series is the JSON shape of a solution line cut.
type Series struct {
	Label string    `json:"label"`
	X     []float64 `json:"x"`
	Y     []float64 `json:"y"`
}

// Result is the content-addressable outcome of one experiment. Everything
// except the timing fields is a deterministic function of the spec: the
// solvers are bit-identical across runs and worker counts, so counters,
// mass error, line cuts and the final-state hash can be cached and compared
// byte-for-byte. Timing fields are measured, vary run to run, and are
// excluded from Deterministic / ResultHash; a cached result reports the
// timings of the run that populated the cache.
type Result struct {
	Spec     ExperimentSpec `json:"spec"`
	SpecHash string         `json:"spec_hash"`

	Steps int `json:"steps"`
	// Cells (CLAMR) or DOF (SELF) sizes the final problem.
	Cells int `json:"cells,omitempty"`
	DOF   int `json:"dof,omitempty"`

	Counters metrics.Counters `json:"counters"`
	// StateBytes is the resident-state footprint. It includes per-chunk
	// solver scratch and therefore varies with the worker budget (an
	// execution detail outside the spec), so — like the timings — it is
	// excluded from Deterministic / ResultHash.
	StateBytes      uint64 `json:"state_bytes"`
	CheckpointBytes int64  `json:"checkpoint_bytes"`
	// MassError is CLAMR's conservation audit (always present for CLAMR,
	// including exact zeros; pointer so SELF omits it rather than claiming
	// a spurious 0).
	MassError *float64 `json:"mass_error,omitempty"`
	// StateHash is the SHA-256 of the final-state checkpoint bytes — the
	// strongest equality certificate two runs of one spec can exchange.
	StateHash string  `json:"state_hash"`
	LineCut   *Series `json:"line_cut,omitempty"`

	// Escalations, set by the serving layer, records the precision climbs
	// that produced this result when the submitted mode tripped a numerical
	// guard: Spec/SpecHash describe the mode that actually ran, Escalations
	// the rungs that failed on the way there. Empty for direct runs, so the
	// field is absent from (and cannot perturb) un-escalated payloads.
	Escalations []Escalation `json:"escalations,omitempty"`

	// Measured timings (non-deterministic; excluded from ResultHash).
	WallSeconds       float64 `json:"wall_seconds"`
	FiniteDiffSeconds float64 `json:"finite_diff_seconds,omitempty"`
	// Phases are the solver's per-phase wall-clock totals (the
	// metrics.Timer buckets) in first-use order. Measured, so excluded from
	// Deterministic / ResultHash like the other timings.
	Phases []metrics.PhaseTotal `json:"phases,omitempty"`
	// Trace, set by the serving layer, is the job's span timeline (queue
	// wait, attempts, retries, escalations, phase aggregates). Measured and
	// service-specific; excluded from Deterministic / ResultHash.
	Trace *obs.TraceData `json:"trace,omitempty"`
	// Energy, set by the serving layer, is the modeled energy/cost
	// accounting for the run: the executing node's arch profile applied to
	// the measured counters. Platform-specific, so excluded from
	// Deterministic / ResultHash like the timings.
	Energy *Energy `json:"energy,omitempty"`
}

// Energy is the modeled per-job energy/cost accounting: roofline-predicted
// runtime on the executing platform, joules at its nominal power, and
// cloud dollars for the compute plus checkpoint storage.
type Energy struct {
	// Arch names the platform profile used (e.g. "Haswell").
	Arch string `json:"arch"`
	// Watts is the platform's nominal power.
	Watts float64 `json:"watts"`
	// ModelSeconds is the roofline-predicted runtime over the measured
	// counters (not the measured wall time — comparable across hosts).
	ModelSeconds float64 `json:"model_seconds"`
	// Joules = Watts × ModelSeconds, the paper's energy estimate.
	Joules float64 `json:"joules"`
	// CostDollars prices the job's compute and checkpoint storage.
	CostDollars float64 `json:"cost_dollars"`
}

// Deterministic returns a copy with the execution-dependent fields zeroed
// (timings and the worker-budget-sensitive StateBytes) — the portion of the
// result that must be identical across reruns of the same spec.
func (r Result) Deterministic() Result {
	r.WallSeconds = 0
	r.FiniteDiffSeconds = 0
	r.StateBytes = 0
	r.Phases = nil
	r.Trace = nil
	r.Energy = nil
	return r
}

// ResultHash is the SHA-256 of the deterministic portion's JSON.
func (r Result) ResultHash() (string, error) {
	data, err := json.Marshal(r.Deterministic())
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// RunOpts carries the execution details that do not participate in the
// spec hash.
type RunOpts struct {
	// Progress is called after every completed step (absolute step, total).
	Progress func(step, total int)
	// Resume restores the solver from a checkpoint instead of the initial
	// condition; stepping continues to the spec's absolute step count.
	Resume io.Reader
	// Checkpoint receives a copy of the final-state checkpoint bytes.
	Checkpoint io.Writer
	// Workers bounds the solver's parallel chunk budget (0 = GOMAXPROCS).
	// Results are bit-identical at every setting.
	Workers int
	// GuardEvery sets the numerical-sentinel cadence (0 = the core
	// default; negative disables the periodic sentinels).
	GuardEvery int
	// CheckpointEvery, with CheckpointSink, writes an in-flight checkpoint
	// every this many steps so a crashed service can resume the job mid-run
	// (0 = none). Periodic checkpoints count toward StoreBytes, so runs of
	// one spec only stay byte-identical at equal cadence settings.
	CheckpointEvery int
	// CheckpointSink opens the periodic checkpoint destination for the
	// given absolute step; Close commits it.
	CheckpointSink func(step int) (io.WriteCloser, error)
}

// Run executes the spec and returns its result. The ctx cancels the run
// between steps (the returned error then wraps ctx.Err()). Failures come
// back as a typed *Error whose Kind the retry policy consumes: spec and
// construction problems are permanent, guard aborts numerical, deadline
// expiry a timeout.
func Run(ctx context.Context, spec ExperimentSpec, opts RunOpts) (*Result, error) {
	n, err := spec.Normalized()
	if err != nil {
		return nil, &Error{Kind: KindPermanent, Op: "spec", Err: err}
	}
	hash, err := n.Hash()
	if err != nil {
		return nil, &Error{Kind: KindPermanent, Op: "spec", Err: err}
	}
	mode, err := n.PrecisionMode()
	if err != nil {
		return nil, &Error{Kind: KindPermanent, Op: "spec", Err: err}
	}

	// The final checkpoint always streams through a hasher so every result
	// carries a state hash; the caller's sink, if any, is teed in.
	hasher := sha256.New()
	var ckpt io.Writer = hasher
	if opts.Checkpoint != nil {
		ckpt = io.MultiWriter(hasher, opts.Checkpoint)
	}
	copts := core.RunOptions{
		Ctx:             ctx,
		Progress:        opts.Progress,
		Resume:          opts.Resume,
		Checkpoint:      ckpt,
		GuardEvery:      opts.GuardEvery,
		CheckpointEvery: opts.CheckpointEvery,
		CheckpointSink:  opts.CheckpointSink,
	}

	res := &Result{Spec: n, SpecHash: hash, Steps: n.Steps}
	switch n.App {
	case AppCLAMR:
		cfg, err := n.CLAMRConfig(opts.Workers)
		if err != nil {
			return nil, &Error{Kind: KindPermanent, Op: "clamr config", Err: err}
		}
		r, err := core.RunCLAMROpts(mode, cfg, n.Steps, n.LineCutN, copts)
		if err != nil {
			return nil, wrapRunError("clamr run", err)
		}
		res.Cells = r.Cells
		res.Counters = r.Counters
		res.StateBytes = r.StateBytes
		res.CheckpointBytes = r.CheckpointBytes
		me := r.MassError
		res.MassError = &me
		res.WallSeconds = r.WallTime.Seconds()
		res.FiniteDiffSeconds = r.FiniteDiffTime.Seconds()
		res.Phases = r.Phases
		if n.LineCutN > 0 {
			res.LineCut = &Series{Label: r.LineCut.Label, X: r.LineCut.X, Y: r.LineCut.Y}
		}
	case AppSELF:
		cfg, err := n.SELFConfig(opts.Workers)
		if err != nil {
			return nil, &Error{Kind: KindPermanent, Op: "self config", Err: err}
		}
		r, err := core.RunSELFOpts(mode, cfg, n.Steps, n.LineCutN, copts)
		if err != nil {
			return nil, wrapRunError("self run", err)
		}
		res.DOF = r.DOF
		res.Counters = r.Counters
		res.StateBytes = r.StateBytes
		res.CheckpointBytes = r.CheckpointBytes
		res.WallSeconds = r.WallTime.Seconds()
		res.Phases = r.Phases
		if n.LineCutN > 0 {
			res.LineCut = &Series{Label: r.LineCut.Label, X: r.LineCut.X, Y: r.LineCut.Y}
		}
	default:
		return nil, &Error{Kind: KindPermanent, Op: "spec", Err: fmt.Errorf("unknown app %q", n.App)}
	}
	res.StateHash = hex.EncodeToString(hasher.Sum(nil))
	return res, nil
}
