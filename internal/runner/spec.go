// Package runner is the experiment-execution core of the serving stack: a
// canonical, content-addressable description of one mini-app experiment
// (ExperimentSpec), its deterministic execution (Run), and the paper-sweep
// harness cmd/paperbench drives (PaperSweep).
//
// The spec hash is the cache key of the experiment service
// (internal/serve), so its derivation is a compatibility contract:
// normalized spec → fixed-field-order JSON → SHA-256 over a versioned
// preamble. Two specs that normalize identically always hash identically;
// any change to the canonical encoding must bump specHashVersion.
//
// Determinism contract for cache keys: a spec intentionally excludes
// execution details that cannot change results — worker counts (all
// parallel sweeps are bit-identical at any worker count, DESIGN.md §5),
// output destinations, timeouts. It includes every field that feeds the
// numerics: problem shape, precision mode, kernel/math variant, step count
// and line-cut resolution.
package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/clamr"
	"repro/internal/precision"
	"repro/internal/self"
)

// specHashVersion is folded into every spec hash so a change to the
// canonical encoding invalidates old cache entries instead of aliasing them.
const specHashVersion = "precision-spec-v1"

// specHashVersionAuto addresses specs that carry autotune inputs — mode
// "auto" or an accuracy budget. Concrete specs without budgets keep hashing
// under specHashVersion (their canonical JSON is byte-identical to v1 thanks
// to omitempty), so the deterministic cache/dedup contract is untouched.
const specHashVersionAuto = "precision-spec-v2"

// ModeAuto asks the service to resolve the cheapest concrete precision mode
// that the fleet's accumulated fidelity evidence shows meets the spec's
// accuracy budget (internal/serve/autotune). Auto specs are resolved to a
// concrete mode at admission; only concrete specs execute or hit the cache.
const ModeAuto = "auto"

// App names.
const (
	AppCLAMR = "clamr"
	AppSELF  = "self"
)

// ExperimentSpec canonically describes one mini-app experiment: which app,
// at which precision, on which problem, for how many steps. JSON field
// order is fixed by the struct declaration; Normalized canonicalizes the
// enum spellings and zeroes fields foreign to the app so equivalent
// submissions collapse onto one hash.
type ExperimentSpec struct {
	// App is "clamr" or "self".
	App string `json:"app"`
	// Mode is the precision mode: "half", "min", "mixed" or "full"
	// (aliases accepted by precision.Parse normalize onto these).
	Mode string `json:"mode"`
	// Steps is the absolute step count to run to.
	Steps int `json:"steps"`
	// LineCutN samples the solution line cut at this resolution (0 = none).
	LineCutN int `json:"line_cut_n,omitempty"`

	// CLAMR problem shape (zeroed for SELF specs).
	NX          int     `json:"nx,omitempty"`
	NY          int     `json:"ny,omitempty"`
	MaxLevel    int     `json:"max_level,omitempty"`
	Kernel      string  `json:"kernel,omitempty"` // "unvectorized" | "vectorized"
	AMRInterval int     `json:"amr_interval,omitempty"`
	DryTol      float64 `json:"dry_tol,omitempty"`

	// SELF problem shape (zeroed for CLAMR specs).
	Elements int    `json:"elements,omitempty"`
	Order    int    `json:"order,omitempty"`
	MathMode string `json:"math_mode,omitempty"` // "intel-native" | "gnu-promoted"

	// Accuracy budgets for mode "auto" (zero = unconstrained on that
	// axis). MaxMassError bounds the final relative mass error;
	// MaxLinecutLinf bounds the L∞ distance of the line cut from the
	// full-precision reference. Specs carrying either (or mode "auto")
	// hash under specHashVersionAuto; resolution strips them, so the
	// concrete spec that executes keeps its v1 hash.
	MaxMassError   float64 `json:"max_mass_error,omitempty"`
	MaxLinecutLinf float64 `json:"max_linecut_linf,omitempty"`
}

// ParseKernel normalizes a kernel name. Accepted: "", "face", "vectorized"
// (the vectorized face kernel, the default) and "cell", "unvectorized".
func ParseKernel(s string) (clamr.Kernel, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "face", "vectorized":
		return clamr.KernelFace, nil
	case "cell", "unvectorized":
		return clamr.KernelCell, nil
	default:
		return clamr.KernelFace, fmt.Errorf("runner: unknown kernel %q", s)
	}
}

// ParseMathMode normalizes a SELF math-mode name. Accepted: "", "native",
// "intel", "intel-native" and "promoted", "gnu", "gnu-promoted".
func ParseMathMode(s string) (self.MathMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "native", "intel", "intel-native":
		return self.MathNative, nil
	case "promoted", "gnu", "gnu-promoted":
		return self.MathPromoted, nil
	default:
		return self.MathNative, fmt.Errorf("runner: unknown math mode %q", s)
	}
}

// Normalized validates the spec and returns its canonical form: enum
// spellings canonicalized, fields foreign to the app zeroed. The canonical
// form is what CanonicalJSON serializes and Hash addresses.
func (s ExperimentSpec) Normalized() (ExperimentSpec, error) {
	out := ExperimentSpec{
		App:            strings.ToLower(strings.TrimSpace(s.App)),
		Steps:          s.Steps,
		LineCutN:       s.LineCutN,
		MaxMassError:   s.MaxMassError,
		MaxLinecutLinf: s.MaxLinecutLinf,
	}
	if s.MaxMassError < 0 {
		return out, fmt.Errorf("runner: spec: max_mass_error must be non-negative, got %g", s.MaxMassError)
	}
	if s.MaxLinecutLinf < 0 {
		return out, fmt.Errorf("runner: spec: max_linecut_linf must be non-negative, got %g", s.MaxLinecutLinf)
	}
	if s.IsAuto() {
		out.Mode = ModeAuto
	} else {
		mode, err := precision.Parse(s.Mode)
		if err != nil {
			return out, fmt.Errorf("runner: spec: %w", err)
		}
		out.Mode = strings.ToLower(mode.String())
	}
	if s.Steps <= 0 {
		return out, fmt.Errorf("runner: spec: steps must be positive, got %d", s.Steps)
	}
	if s.LineCutN < 0 {
		return out, fmt.Errorf("runner: spec: line_cut_n must be non-negative, got %d", s.LineCutN)
	}
	switch out.App {
	case AppCLAMR:
		if s.NX <= 0 || s.NY <= 0 {
			return out, fmt.Errorf("runner: spec: clamr needs positive nx/ny, got %d×%d", s.NX, s.NY)
		}
		if s.MaxLevel < 0 {
			return out, fmt.Errorf("runner: spec: max_level must be non-negative, got %d", s.MaxLevel)
		}
		k, err := ParseKernel(s.Kernel)
		if err != nil {
			return out, err
		}
		out.NX, out.NY = s.NX, s.NY
		out.MaxLevel = s.MaxLevel
		out.Kernel = k.String()
		out.AMRInterval = s.AMRInterval
		out.DryTol = s.DryTol
	case AppSELF:
		if s.Elements <= 0 || s.Order <= 0 {
			return out, fmt.Errorf("runner: spec: self needs positive elements/order, got %d/%d", s.Elements, s.Order)
		}
		mm, err := ParseMathMode(s.MathMode)
		if err != nil {
			return out, err
		}
		out.Elements, out.Order = s.Elements, s.Order
		out.MathMode = mm.String()
	default:
		return out, fmt.Errorf("runner: spec: unknown app %q (want %q or %q)", s.App, AppCLAMR, AppSELF)
	}
	return out, nil
}

// CanonicalJSON returns the deterministic serialization of the normalized
// spec: struct fields in declaration order, canonical enum spellings,
// zero-valued foreign fields omitted.
func (s ExperimentSpec) CanonicalJSON() ([]byte, error) {
	n, err := s.Normalized()
	if err != nil {
		return nil, err
	}
	return json.Marshal(n)
}

// Hash returns the spec's content address: the lowercase hex SHA-256 of the
// versioned canonical JSON. Equivalent specs (alias spellings, junk foreign
// fields) hash identically; any result-affecting difference hashes apart.
func (s ExperimentSpec) Hash() (string, error) {
	n, err := s.Normalized()
	if err != nil {
		return "", err
	}
	cj, err := json.Marshal(n)
	if err != nil {
		return "", err
	}
	version := specHashVersion
	if n.Mode == ModeAuto || n.MaxMassError != 0 || n.MaxLinecutLinf != 0 {
		version = specHashVersionAuto
	}
	h := sha256.New()
	h.Write([]byte(version))
	h.Write([]byte{'\n'})
	h.Write(cj)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// IsAuto reports whether the spec requests service-side mode resolution.
func (s ExperimentSpec) IsAuto() bool {
	return strings.ToLower(strings.TrimSpace(s.Mode)) == ModeAuto
}

// Concrete returns the spec resolved to the given precision mode, with the
// accuracy budgets stripped: the executable form whose canonical JSON — and
// therefore hash — is byte-identical to a plain v1 submission of the same
// shape at that mode.
func (s ExperimentSpec) Concrete(mode string) ExperimentSpec {
	out := s
	out.Mode = mode
	out.MaxMassError = 0
	out.MaxLinecutLinf = 0
	return out
}

// PrecisionMode returns the spec's parsed precision mode.
func (s ExperimentSpec) PrecisionMode() (precision.Mode, error) {
	return precision.Parse(s.Mode)
}

// CLAMRConfig materializes the CLAMR configuration the spec describes.
// workers sets the parallel chunk budget (0 = solver default); it is an
// execution detail, never part of the hash.
func (s ExperimentSpec) CLAMRConfig(workers int) (clamr.Config, error) {
	if s.App != AppCLAMR {
		return clamr.Config{}, fmt.Errorf("runner: spec is for app %q, not clamr", s.App)
	}
	k, err := ParseKernel(s.Kernel)
	if err != nil {
		return clamr.Config{}, err
	}
	return clamr.Config{
		NX: s.NX, NY: s.NY,
		MaxLevel:    s.MaxLevel,
		Kernel:      k,
		AMRInterval: s.AMRInterval,
		DryTol:      s.DryTol,
		Workers:     workers,
	}, nil
}

// SELFConfig materializes the SELF configuration the spec describes.
func (s ExperimentSpec) SELFConfig(workers int) (self.Config, error) {
	if s.App != AppSELF {
		return self.Config{}, fmt.Errorf("runner: spec is for app %q, not self", s.App)
	}
	mm, err := ParseMathMode(s.MathMode)
	if err != nil {
		return self.Config{}, err
	}
	return self.Config{
		Elements: s.Elements,
		Order:    s.Order,
		MathMode: mm,
		Workers:  workers,
	}, nil
}

// CLAMRSpec builds the spec describing a CLAMR study run with the given
// configuration — the inverse of CLAMRConfig, used to mirror the paper
// sweep's session runs onto the experiment service.
func CLAMRSpec(mode precision.Mode, cfg clamr.Config, steps, lineCutN int) ExperimentSpec {
	return ExperimentSpec{
		App:      AppCLAMR,
		Mode:     strings.ToLower(mode.String()),
		Steps:    steps,
		LineCutN: lineCutN,
		NX:       cfg.NX, NY: cfg.NY,
		MaxLevel:    cfg.MaxLevel,
		Kernel:      cfg.Kernel.String(),
		AMRInterval: cfg.AMRInterval,
		DryTol:      cfg.DryTol,
	}
}

// SELFSpec builds the spec describing a SELF study run.
func SELFSpec(mode precision.Mode, cfg self.Config, steps, lineCutN int) ExperimentSpec {
	return ExperimentSpec{
		App:      AppSELF,
		Mode:     strings.ToLower(mode.String()),
		Steps:    steps,
		LineCutN: lineCutN,
		Elements: cfg.Elements,
		Order:    cfg.Order,
		MathMode: cfg.MathMode.String(),
	}
}
