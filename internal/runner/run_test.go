package runner

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/precision"
)

// TestRunMatchesCoreStudy asserts the daemon's execution path produces the
// same deterministic measurables as the direct study runners cmd/paperbench
// uses — the acceptance contract for serving cached results in their place.
func TestRunMatchesCoreStudy(t *testing.T) {
	spec := clamrTestSpec()
	res, err := Run(context.Background(), spec, RunOpts{})
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := spec.CLAMRConfig(0)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.RunCLAMR(precision.Full, cfg, spec.Steps, spec.LineCutN)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters != want.Counters {
		t.Errorf("counters diverge:\n runner %+v\n core   %+v", res.Counters, want.Counters)
	}
	if res.Cells != want.Cells || res.StateBytes != want.StateBytes ||
		res.CheckpointBytes != want.CheckpointBytes {
		t.Errorf("size measurables diverge: %+v vs %+v", res, want)
	}
	if res.MassError == nil || *res.MassError != want.MassError {
		t.Errorf("mass error diverges: %v vs %v", res.MassError, want.MassError)
	}
	if res.LineCut == nil || len(res.LineCut.Y) != len(want.LineCut.Y) {
		t.Fatalf("line cut missing or mis-sized")
	}
	for i := range want.LineCut.Y {
		if res.LineCut.Y[i] != want.LineCut.Y[i] {
			t.Fatalf("line cut diverges at %d: %g vs %g", i, res.LineCut.Y[i], want.LineCut.Y[i])
		}
	}
}

// TestRunDeterministicAcrossReruns asserts the deterministic result portion
// (and the state hash) is identical on rerun — the property that makes
// content-addressed caching sound.
func TestRunDeterministicAcrossReruns(t *testing.T) {
	for _, spec := range []ExperimentSpec{clamrTestSpec(), selfTestSpec()} {
		a, err := Run(context.Background(), spec, RunOpts{})
		if err != nil {
			t.Fatalf("%s: %v", spec.App, err)
		}
		b, err := Run(context.Background(), spec, RunOpts{Workers: 3})
		if err != nil {
			t.Fatalf("%s rerun: %v", spec.App, err)
		}
		ha, err := a.ResultHash()
		if err != nil {
			t.Fatal(err)
		}
		hb, err := b.ResultHash()
		if err != nil {
			t.Fatal(err)
		}
		if ha != hb {
			t.Errorf("%s: result hash changed across reruns/worker counts: %s vs %s", spec.App, ha, hb)
		}
		if a.StateHash != b.StateHash || a.StateHash == "" {
			t.Errorf("%s: state hash changed: %q vs %q", spec.App, a.StateHash, b.StateHash)
		}
	}
}

func TestRunProgressAndCancellation(t *testing.T) {
	spec := clamrTestSpec()
	var steps []int
	res, err := Run(context.Background(), spec, RunOpts{
		Progress: func(step, total int) {
			if total != spec.Steps {
				t.Fatalf("progress total = %d, want %d", total, spec.Steps)
			}
			steps = append(steps, step)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) != spec.Steps || steps[len(steps)-1] != spec.Steps {
		t.Fatalf("progress saw steps %v, want 1..%d", steps, spec.Steps)
	}
	if res.SpecHash == "" {
		t.Error("result missing spec hash")
	}

	// Cancel mid-run: the error must wrap context.Canceled.
	ctx, cancel := context.WithCancel(context.Background())
	_, err = Run(ctx, spec, RunOpts{
		Progress: func(step, total int) {
			if step == 2 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run returned %v, want context.Canceled", err)
	}
}

// TestRestartThroughRunner checkpoints an experiment mid-run, resumes it
// through the runner path, and asserts the resumed run's final state hash
// matches an uninterrupted run — restart fidelity for both mini-apps.
func TestRestartThroughRunner(t *testing.T) {
	for _, full := range []ExperimentSpec{clamrTestSpec(), selfTestSpec()} {
		uninterrupted, err := Run(context.Background(), full, RunOpts{})
		if err != nil {
			t.Fatalf("%s uninterrupted: %v", full.App, err)
		}

		// Run the first half and capture its checkpoint.
		half := full
		half.Steps = full.Steps / 2
		var ckpt bytes.Buffer
		if _, err := Run(context.Background(), half, RunOpts{Checkpoint: &ckpt}); err != nil {
			t.Fatalf("%s first half: %v", full.App, err)
		}

		// Resume from the checkpoint to the full step count.
		resumed, err := Run(context.Background(), full, RunOpts{Resume: &ckpt})
		if err != nil {
			t.Fatalf("%s resume: %v", full.App, err)
		}
		if resumed.Steps != uninterrupted.Steps {
			t.Fatalf("%s: resumed to %d steps, want %d", full.App, resumed.Steps, uninterrupted.Steps)
		}
		if resumed.StateHash != uninterrupted.StateHash {
			t.Errorf("%s: restart diverged: state hash %s after resume, %s uninterrupted",
				full.App, resumed.StateHash, uninterrupted.StateHash)
		}
	}
}
