package runner

import (
	"strings"
	"testing"

	"repro"
	"repro/internal/precision"
)

func clamrTestSpec() ExperimentSpec {
	return ExperimentSpec{
		App: AppCLAMR, Mode: "full", Steps: 10, LineCutN: 32,
		NX: 24, NY: 24, MaxLevel: 1, Kernel: "vectorized", AMRInterval: 5,
	}
}

func selfTestSpec() ExperimentSpec {
	return ExperimentSpec{
		App: AppSELF, Mode: "min", Steps: 4, LineCutN: 16,
		Elements: 2, Order: 3, MathMode: "intel-native",
	}
}

func TestSpecHashStableAcrossAliases(t *testing.T) {
	base := clamrTestSpec()
	want, err := base.Hash()
	if err != nil {
		t.Fatal(err)
	}
	aliases := []ExperimentSpec{base, base, base}
	aliases[0].Mode = "double" // alias of full
	aliases[1].Kernel = "face" // alias of vectorized
	aliases[2].App = " CLAMR "
	// Junk SELF fields on a CLAMR spec must not perturb the hash.
	aliases[2].Elements, aliases[2].Order, aliases[2].MathMode = 9, 9, "gnu"
	for i, a := range aliases {
		got, err := a.Hash()
		if err != nil {
			t.Fatalf("alias %d: %v", i, err)
		}
		if got != want {
			t.Errorf("alias %d hashes %s, want %s", i, got, want)
		}
	}
}

func TestSpecHashSeparatesResultAffectingFields(t *testing.T) {
	base := clamrTestSpec()
	seen := map[string]string{}
	record := func(name string, s ExperimentSpec) {
		h, err := s.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for prev, ph := range seen {
			if ph == h {
				t.Errorf("%s and %s collide on %s", name, prev, h)
			}
		}
		seen[name] = h
	}
	record("base", base)
	v := base
	v.Mode = "min"
	record("mode", v)
	v = base
	v.Steps++
	record("steps", v)
	v = base
	v.NX *= 2
	record("nx", v)
	v = base
	v.Kernel = "cell"
	record("kernel", v)
	v = base
	v.AMRInterval = 0
	record("amr", v)
	v = base
	v.DryTol = 1e-7
	record("drytol", v)
	record("self", selfTestSpec())
}

func TestSpecCanonicalJSONIsStable(t *testing.T) {
	s := selfTestSpec()
	s.MathMode = "gnu" // alias
	got, err := s.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	want := `{"app":"self","mode":"min","steps":4,"line_cut_n":16,` +
		`"elements":2,"order":3,"math_mode":"gnu-promoted"}`
	if string(got) != want {
		t.Errorf("canonical JSON:\n got %s\nwant %s", got, want)
	}
}

func TestSpecValidation(t *testing.T) {
	bad := []ExperimentSpec{
		{App: "hydra", Mode: "full", Steps: 1},
		{App: AppCLAMR, Mode: "full", Steps: 0, NX: 8, NY: 8},
		{App: AppCLAMR, Mode: "sideways", Steps: 1, NX: 8, NY: 8},
		{App: AppCLAMR, Mode: "full", Steps: 1, NX: 0, NY: 8},
		{App: AppCLAMR, Mode: "full", Steps: 1, NX: 8, NY: 8, Kernel: "warp"},
		{App: AppSELF, Mode: "full", Steps: 1, Elements: 0, Order: 3},
		{App: AppSELF, Mode: "full", Steps: 1, Elements: 2, Order: 3, MathMode: "llvm"},
		{App: AppCLAMR, Mode: "full", Steps: 1, NX: 8, NY: 8, LineCutN: -1},
	}
	for i, s := range bad {
		if _, err := s.Normalized(); err == nil {
			t.Errorf("spec %d validated: %+v", i, s)
		}
	}
}

func TestSpecAutoModeHashing(t *testing.T) {
	// Concrete specs keep the v1 hash: a budget-free spec must hash
	// identically whether or not the auto-mode fields exist in the binary.
	// Guarded by construction — a concrete spec's canonical JSON carries no
	// budget keys, so its digest input is byte-for-byte the v1 form.
	concrete := clamrTestSpec()
	cj, err := concrete.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(cj), "max_mass_error") || strings.Contains(string(cj), "auto") {
		t.Fatalf("concrete spec canonical JSON leaks auto fields: %s", cj)
	}

	auto := clamrTestSpec()
	auto.Mode = "auto"
	auto.MaxMassError = 1e-7
	n, err := auto.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if !n.IsAuto() || n.Mode != ModeAuto {
		t.Fatalf("normalized auto spec = %+v", n)
	}

	// Auto specs and budget-carrying specs hash apart from each other and
	// from the concrete base.
	hashes := map[string]string{}
	for name, s := range map[string]ExperimentSpec{
		"concrete": concrete,
		"auto":     auto,
		"budget": func() ExperimentSpec {
			v := clamrTestSpec()
			v.MaxMassError = 1e-7
			return v
		}(),
		"auto-linf": func() ExperimentSpec {
			v := auto
			v.MaxMassError = 0
			v.MaxLinecutLinf = 1e-5
			return v
		}(),
	} {
		h, err := s.Hash()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for prev, ph := range hashes {
			if ph == h {
				t.Errorf("%s and %s collide on %s", name, prev, h)
			}
		}
		hashes[name] = h
	}

	// Concrete(mode) strips budgets: the result hashes exactly like a plain
	// submission at that mode — the dedup/cache contract resolution relies on.
	resolved := auto.Concrete("min")
	plain := clamrTestSpec()
	plain.Mode = "min"
	rh, err := resolved.Hash()
	if err != nil {
		t.Fatal(err)
	}
	ph, err := plain.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if rh != ph {
		t.Errorf("Concrete(min) hash %s != plain min submission %s", rh, ph)
	}
}

func TestSpecAutoModeValidation(t *testing.T) {
	neg := clamrTestSpec()
	neg.MaxMassError = -1e-9
	if _, err := neg.Normalized(); err == nil {
		t.Error("negative mass-error budget validated")
	}
	neg = clamrTestSpec()
	neg.MaxLinecutLinf = -1
	if _, err := neg.Normalized(); err == nil {
		t.Error("negative line-cut budget validated")
	}
	// "auto" with no budget is still valid: the autotuner treats a
	// budget-free auto spec as unconstrained.
	open := clamrTestSpec()
	open.Mode = " Auto "
	if _, err := open.Normalized(); err != nil {
		t.Errorf("bare auto spec rejected: %v", err)
	}
}

func TestSweepSpecsCoverThePaperSweep(t *testing.T) {
	specs := SweepSpecs(repro.QuickScale)
	if len(specs) != 11 {
		t.Fatalf("sweep has %d specs, want 11 (3 modes × 2 kernels + 3 fig modes + 2 self modes)", len(specs))
	}
	hashes := map[string]bool{}
	apps := map[string]int{}
	for i, s := range specs {
		if _, err := s.Normalized(); err != nil {
			t.Errorf("spec %d invalid: %v", i, err)
		}
		h, err := s.Hash()
		if err != nil {
			t.Fatal(err)
		}
		if hashes[h] {
			t.Errorf("spec %d duplicates an earlier spec: %+v", i, s)
		}
		hashes[h] = true
		apps[s.App]++
	}
	if apps[AppCLAMR] != 9 || apps[AppSELF] != 2 {
		t.Errorf("sweep app split = %v, want clamr:9 self:2", apps)
	}
}

func TestSpecRoundTripThroughConfigs(t *testing.T) {
	s := repro.NewSession(repro.QuickScale)
	cfg, steps := s.CLAMRPerfConfig(repro.KernelVectorized)
	spec := CLAMRSpec(precision.Mixed, cfg, steps, s.LineCutN())
	back, err := spec.CLAMRConfig(0)
	if err != nil {
		t.Fatal(err)
	}
	if back.NX != cfg.NX || back.NY != cfg.NY || back.MaxLevel != cfg.MaxLevel ||
		back.Kernel != cfg.Kernel || back.AMRInterval != cfg.AMRInterval || back.DryTol != cfg.DryTol {
		t.Errorf("CLAMR config round trip: got %+v want %+v", back, cfg)
	}
	if !strings.EqualFold(spec.Mode, "mixed") {
		t.Errorf("spec mode = %q", spec.Mode)
	}
}
