package par

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestPoolForNVisitsEachIndexOnce(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	const n = 10000
	for _, chunks := range []int{0, 1, 2, 3, 7, 32} {
		counts := make([]int32, n)
		p.ForN(chunks, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("chunks=%d index %d visited %d times", chunks, i, c)
			}
		}
	}
	called := false
	p.ForN(4, 0, func(lo, hi int) { called = true })
	if called {
		t.Error("ForN called fn for n=0")
	}
	p.ForN(100, 3, func(lo, hi int) {}) // chunks > n must not panic
}

// TestPoolMatchesSpawn verifies the pool and the spawn baseline produce
// byte-identical output for a disjoint-write kernel at every chunk count —
// the determinism contract that lets the solvers swap engines freely.
func TestPoolMatchesSpawn(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	const n = 4096
	kernel := func(out []float64) func(lo, hi int) {
		return func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := float64(i) * 0.9999
				out[i] = math.Sin(x) * math.Exp(-x/1000)
			}
		}
	}
	for _, chunks := range []int{1, 2, 5, 13, 64} {
		pooled := make([]float64, n)
		spawned := make([]float64, n)
		p.ForN(chunks, n, kernel(pooled))
		SpawnForN(chunks, n, kernel(spawned))
		for i := range pooled {
			if pooled[i] != spawned[i] {
				t.Fatalf("chunks=%d index %d: pool %x spawn %x", chunks, i, pooled[i], spawned[i])
			}
		}
	}
}

func TestPoolForChunksDeliversEveryChunk(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	for _, chunks := range []int{1, 3, 9} {
		const n = 100
		seen := make([]int32, chunks)
		covered := make([]int32, n)
		p.ForChunks(chunks, n, func(c, lo, hi int) {
			atomic.AddInt32(&seen[c], 1)
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&covered[i], 1)
			}
		})
		for c, s := range seen {
			if s != 1 {
				t.Fatalf("chunks=%d chunk %d delivered %d times", chunks, c, s)
			}
		}
		for i, c := range covered {
			if c != 1 {
				t.Fatalf("chunks=%d index %d covered %d times", chunks, i, c)
			}
		}
	}
}

// TestPoolConcurrentDispatchFallsBack checks that overlapping dispatches
// from independent goroutines still complete correctly (the busy pool
// routes the second caller through the spawn fallback).
func TestPoolConcurrentDispatchFallsBack(t *testing.T) {
	p := NewPool(2)
	defer p.Close()
	const n = 50000
	var wg sync.WaitGroup
	results := make([][]float64, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]float64, n)
			p.ForN(4, n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					out[i] = float64(i) * 1.5
				}
			})
			results[g] = out
		}(g)
	}
	wg.Wait()
	for g := 1; g < 4; g++ {
		for i := range results[0] {
			if results[g][i] != results[0][i] {
				t.Fatalf("goroutine %d diverged at %d", g, i)
			}
		}
	}
}

func TestReducerMatchesMapReduce(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	r := NewReducer[float64](p)
	const n = 100000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Abs(math.Sin(float64(i)*1.7)) + 0.001
	}
	vals[73512] = 1e-9
	produce := func(lo, hi int) float64 {
		m := math.Inf(1)
		for i := lo; i < hi; i++ {
			if vals[i] < m {
				m = vals[i]
			}
		}
		return m
	}
	for _, chunks := range []int{1, 2, 4, 9, 64} {
		want := MapReduce(chunks, n, produce, math.Min, math.Inf(1))
		got := r.Reduce(chunks, n, produce, math.Min, math.Inf(1))
		if got != want {
			t.Fatalf("chunks=%d reducer %g mapreduce %g", chunks, got, want)
		}
	}
	if got := r.Reduce(4, 0, produce, math.Min, math.Inf(1)); !math.IsInf(got, 1) {
		t.Error("empty Reduce did not return zero value")
	}
}

// TestPoolDispatchZeroAlloc is the tentpole guarantee: dispatching prebound
// work on a warm pool allocates nothing, for both ForN and Reducer paths.
func TestPoolDispatchZeroAlloc(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	out := make([]float64, 10000)
	fn := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = float64(i)
		}
	}
	p.ForN(4, len(out), fn) // warm
	if allocs := testing.AllocsPerRun(100, func() { p.ForN(4, len(out), fn) }); allocs != 0 {
		t.Errorf("pool ForN dispatch allocated %v objects per call", allocs)
	}

	r := NewReducer[float64](p)
	produce := func(lo, hi int) float64 {
		m := math.Inf(1)
		for i := lo; i < hi; i++ {
			if out[i] < m {
				m = out[i]
			}
		}
		return m
	}
	r.Reduce(4, len(out), produce, math.Min, math.Inf(1)) // warm
	if allocs := testing.AllocsPerRun(100, func() {
		r.Reduce(4, len(out), produce, math.Min, math.Inf(1))
	}); allocs != 0 {
		t.Errorf("Reducer dispatch allocated %v objects per call", allocs)
	}
}

func TestPoolCloseReleasesWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	p := NewPool(8)
	p.ForN(8, 1000, func(lo, hi int) {})
	p.Close()
	deadline := 200
	for runtime.NumGoroutine() > before && deadline > 0 {
		runtime.Gosched()
		deadline--
	}
	// Closed pool must still serve work via the fallback.
	sum := int64(0)
	p.ForN(4, 100, func(lo, hi int) {
		atomic.AddInt64(&sum, int64(hi-lo))
	})
	if sum != 100 {
		t.Fatalf("closed-pool fallback covered %d of 100", sum)
	}
}

// BenchmarkParDispatch measures fork-join overhead: persistent pool vs the
// spawn-per-call baseline, at the chunk counts and trip counts the ISSUE
// calls out. The kernel body is a pure streaming write so small n exposes
// dispatch cost and large n shows it amortizing away.
func BenchmarkParDispatch(b *testing.B) {
	for _, bc := range []struct {
		name string
		n    int
	}{
		{"n4", 4}, // empty body: pure dispatch overhead
		{"n1e3", 1_000},
		{"n1e5", 100_000},
		{"n1e7", 10_000_000},
	} {
		out := make([]float64, bc.n)
		body := func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = float64(i)
			}
		}
		workers := 4
		b.Run("pool/"+bc.name, func(b *testing.B) {
			p := NewPool(workers)
			defer p.Close()
			p.ForN(workers, bc.n, body)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.ForN(workers, bc.n, body)
			}
		})
		b.Run("spawn/"+bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SpawnForN(workers, bc.n, body)
			}
		})
	}
}
