package par

import (
	"runtime"
	"sync"
)

// Pool is a persistent deterministic worker pool: a fixed set of long-lived
// goroutines parked on an epoch/notify protocol, woken per dispatch and
// parked again when the fork-join completes. Dispatching on a warm pool
// costs two mutex sections and a broadcast instead of `workers` goroutine
// spawns, and — crucially for the mini-apps' steady-state loops — allocates
// nothing.
//
// Determinism contract: work is split into `chunks` fixed contiguous ranges
// by Bounds(n, chunks, c), exactly the chunking of the free ForN/MapReduce
// helpers. Which worker executes a chunk is scheduling-dependent, but the
// chunk→index-range map depends only on (n, chunks), so any computation with
// disjoint writes (or per-chunk partials) is bit-identical at every pool
// size and across runs.
//
// A Pool's dispatches are serialized internally. If a dispatch arrives while
// another is in flight (concurrent solvers sharing the Default pool, or a
// nested ForN from inside a kernel), the call transparently falls back to
// the spawn-per-call path — same chunking, same results, just without the
// warm-worker speedup.
type Pool struct {
	size int

	// runMu serializes dispatches; TryLock failure selects the spawn
	// fallback instead of queueing, which keeps nested dispatch safe.
	runMu sync.Mutex

	// mu guards the job slots and epoch; workers park on cond until the
	// epoch advances past the one they last served.
	mu     sync.Mutex
	cond   *sync.Cond
	epoch  uint64
	closed bool

	// Current job, valid for one epoch. Exactly one of fnRange/fnChunk is
	// non-nil.
	nChunks int
	n       int
	fnRange func(lo, hi int)
	fnChunk func(chunk, lo, hi int)

	// wg counts worker completions of the current epoch.
	wg sync.WaitGroup
}

// NewPool starts a pool with `size` lanes of parallelism (size ≤ 0 selects
// GOMAXPROCS). The dispatching goroutine itself serves lane 0 — warm caches,
// one fewer wake/park round-trip — so only size−1 goroutines are parked.
// They cost nothing until the first dispatch.
func NewPool(size int) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	p := &Pool{size: size}
	p.cond = sync.NewCond(&p.mu)
	for w := 1; w < size; w++ {
		go p.worker(w)
	}
	return p
}

// Size returns the number of persistent workers.
func (p *Pool) Size() int { return p.size }

// Close permanently releases the pool's workers. Dispatching on a closed
// pool falls back to the spawn-per-call path. The Default pool is never
// closed.
func (p *Pool) Close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// worker is the body of one persistent goroutine: wait for a new epoch,
// execute every chunk assigned to this worker id (strided so all chunk
// counts are served regardless of pool size), signal completion, park again.
func (p *Pool) worker(id int) {
	var seen uint64
	for {
		p.mu.Lock()
		for p.epoch == seen && !p.closed {
			p.cond.Wait()
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		seen = p.epoch
		nChunks, n := p.nChunks, p.n
		fnRange, fnChunk := p.fnRange, p.fnChunk
		p.mu.Unlock()

		p.lane(id, nChunks, n, fnRange, fnChunk)
		p.wg.Done()
	}
}

// lane executes every chunk assigned to lane id: chunks id, id+size, …
// strided so any chunk count is served by any pool size.
func (p *Pool) lane(id, nChunks, n int, fnRange func(lo, hi int), fnChunk func(chunk, lo, hi int)) {
	for c := id; c < nChunks; c += p.size {
		lo, hi := Bounds(n, nChunks, c)
		if fnRange != nil {
			if lo < hi {
				fnRange(lo, hi)
			}
		} else {
			fnChunk(c, lo, hi)
		}
	}
}

// dispatch publishes one job, serves lane 0 on the calling goroutine, and
// blocks until the parked workers have served the rest. Caller must hold
// runMu. Because the next dispatch cannot begin before wg.Wait returns,
// every worker observes every epoch exactly once.
func (p *Pool) dispatch(nChunks, n int, fnRange func(lo, hi int), fnChunk func(chunk, lo, hi int)) {
	p.wg.Add(p.size - 1)
	p.mu.Lock()
	p.nChunks, p.n = nChunks, n
	p.fnRange, p.fnChunk = fnRange, fnChunk
	p.epoch++
	p.mu.Unlock()
	p.cond.Broadcast()
	p.lane(0, nChunks, n, fnRange, fnChunk)
	p.wg.Wait()
}

// tryDispatch runs the job on the pool if it is idle and open, else reports
// false so the caller can take the spawn fallback.
func (p *Pool) tryDispatch(nChunks, n int, fnRange func(lo, hi int), fnChunk func(chunk, lo, hi int)) bool {
	if !p.runMu.TryLock() {
		return false
	}
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		p.runMu.Unlock()
		return false
	}
	p.dispatch(nChunks, n, fnRange, fnChunk)
	p.runMu.Unlock()
	return true
}

// ForN runs fn over [0, n) split into `chunks` contiguous ranges
// (chunks ≤ 0 selects the pool size; chunks is clamped to n). chunks == 1
// runs inline. The chunking — and therefore the result of any disjoint-write
// kernel — is identical to the free ForN with workers = chunks.
//
// fn is called once per non-empty chunk; to dispatch without allocating,
// pass a closure that lives across calls (prebound on the solver) rather
// than a fresh literal capturing locals.
func (p *Pool) ForN(chunks, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if chunks <= 0 {
		chunks = p.size
	}
	if chunks > n {
		chunks = n
	}
	if chunks == 1 {
		fn(0, n)
		return
	}
	if !p.tryDispatch(chunks, n, fn, nil) {
		SpawnForN(chunks, n, fn)
	}
}

// ForChunks runs fn(chunk, lo, hi) for every chunk in [0, chunks) with
// (lo, hi) = Bounds(n, chunks, chunk). Unlike ForN the chunk count is not
// clamped and empty chunks are still delivered, so per-chunk scratch and
// reduction partials stay index-stable. chunks == 1 runs inline.
func (p *Pool) ForChunks(chunks, n int, fn func(chunk, lo, hi int)) {
	if chunks <= 0 {
		return
	}
	if chunks == 1 {
		fn(0, 0, n)
		return
	}
	if !p.tryDispatch(chunks, n, nil, fn) {
		spawnChunks(chunks, n, fn)
	}
}

// defaultPool is the shared package pool behind the free ForN/MapReduce
// wrappers and the solvers. Sized to GOMAXPROCS at first use.
var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the shared package-level pool, creating it on first use.
func Default() *Pool {
	defaultOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}

// pad keeps per-chunk reduction partials on separate cache lines so workers
// publishing partials do not false-share.
type pad[T any] struct {
	v T
	_ [64]byte
}

// Reducer binds a pool to a reusable, padded per-chunk partial buffer so
// repeated reductions (one per timestep, thousands of steps) allocate
// nothing at steady state. A Reducer is not safe for concurrent use; give
// each solver its own.
type Reducer[T any] struct {
	pool     *Pool
	partials []pad[T]
	produce  func(lo, hi int) T
	job      func(chunk, lo, hi int)
}

// NewReducer returns a Reducer dispatching on p.
func NewReducer[T any](p *Pool) *Reducer[T] {
	r := &Reducer[T]{pool: p}
	r.job = func(chunk, lo, hi int) {
		r.partials[chunk].v = r.produce(lo, hi)
	}
	return r
}

// Reduce evaluates produce over `chunks` contiguous ranges of [0, n) and
// folds the per-chunk partials in chunk order with combine — the same
// semantics as the free MapReduce with workers = chunks, minus the per-call
// allocations. produce and combine should be prebound closures for the call
// to stay allocation-free.
func (r *Reducer[T]) Reduce(chunks, n int, produce func(lo, hi int) T, combine func(a, b T) T, zero T) T {
	if n <= 0 {
		return zero
	}
	if chunks <= 0 {
		chunks = r.pool.size
	}
	if chunks > n {
		chunks = n
	}
	if chunks == 1 {
		return combine(zero, produce(0, n))
	}
	if cap(r.partials) < chunks {
		r.partials = make([]pad[T], chunks)
	}
	r.partials = r.partials[:chunks]
	r.produce = produce
	r.pool.ForChunks(chunks, n, r.job)
	r.produce = nil
	acc := zero
	for c := 0; c < chunks; c++ {
		acc = combine(acc, r.partials[c].v)
	}
	return acc
}
