// Package par provides the deterministic fork-join helper the mini-apps
// parallelise their kernels with: fixed contiguous chunking (no work
// stealing), so a computation that writes disjoint index ranges produces
// bit-identical results at every worker count.
package par

import (
	"runtime"
	"sync"
)

// Bounds returns the half-open range of chunk w when n items are split
// into `workers` nearly equal contiguous chunks. It depends only on
// (n, workers, w).
func Bounds(n, workers, w int) (lo, hi int) {
	return n * w / workers, n * (w + 1) / workers
}

// ForN runs fn over [0, n) split into contiguous chunks across `workers`
// goroutines and waits for completion. workers ≤ 1 runs inline. fn must
// write only within its own range (or to per-chunk storage) for the result
// to be deterministic.
func ForN(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := Bounds(n, workers, w)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// MapReduce runs produce over each chunk, storing one partial per chunk,
// then folds the partials in chunk order with combine. With an
// order-insensitive combine (min, max, exact accumulators) the result is
// bit-identical for every worker count; with float addition it is
// deterministic for a fixed worker count.
func MapReduce[T any](workers, n int, produce func(lo, hi int) T, combine func(a, b T) T, zero T) T {
	if n <= 0 {
		return zero
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return combine(zero, produce(0, n))
	}
	partials := make([]T, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := Bounds(n, workers, w)
		go func(w, lo, hi int) {
			defer wg.Done()
			partials[w] = produce(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	acc := zero
	for _, p := range partials {
		acc = combine(acc, p)
	}
	return acc
}
