// Package par provides the deterministic fork-join helpers the mini-apps
// parallelise their kernels with: fixed contiguous chunking (no work
// stealing), so a computation that writes disjoint index ranges produces
// bit-identical results at every worker count.
//
// Two execution engines share that chunking contract: the persistent Pool
// (long-lived workers parked on an epoch/notify protocol, allocation-free
// dispatch — the steady-state engine) and the spawn-per-call SpawnForN /
// SpawnMapReduce path (one goroutine per chunk, kept as the comparison
// baseline and as the fallback when a pool is busy). The free ForN and
// MapReduce route through the shared Default pool.
package par

import (
	"runtime"
	"sync"
)

// Bounds returns the half-open range of chunk w when n items are split
// into `workers` nearly equal contiguous chunks. It depends only on
// (n, workers, w).
func Bounds(n, workers, w int) (lo, hi int) {
	return n * w / workers, n * (w + 1) / workers
}

// ForN runs fn over [0, n) split into contiguous chunks across `workers`
// (≤ 0 selects GOMAXPROCS) and waits for completion. workers == 1 runs
// inline. fn must write only within its own range (or to per-chunk storage)
// for the result to be deterministic. Dispatches on the shared Default pool;
// see Pool.ForN for the allocation notes.
func ForN(workers, n int, fn func(lo, hi int)) {
	Default().ForN(workers, n, fn)
}

// MapReduce runs produce over each chunk, storing one partial per chunk,
// then folds the partials in chunk order with combine. With an
// order-insensitive combine (min, max, exact accumulators) the result is
// bit-identical for every worker count; with float addition it is
// deterministic for a fixed worker count.
//
// This compatibility wrapper allocates its partial buffer per call; hot
// loops should hold a Reducer instead.
func MapReduce[T any](workers, n int, produce func(lo, hi int) T, combine func(a, b T) T, zero T) T {
	if n <= 0 {
		return zero
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return combine(zero, produce(0, n))
	}
	partials := make([]T, workers)
	Default().ForChunks(workers, n, func(chunk, lo, hi int) {
		partials[chunk] = produce(lo, hi)
	})
	acc := zero
	for _, p := range partials {
		acc = combine(acc, p)
	}
	return acc
}

// SpawnForN is the original spawn-per-call fork-join: one goroutine per
// chunk, created and joined on every invocation. It is the dispatch-overhead
// baseline the pool is benchmarked against, and the fallback used when a
// pool is busy or closed. Chunking and results match ForN exactly.
func SpawnForN(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := Bounds(n, workers, w)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// SpawnMapReduce is the spawn-per-call counterpart of MapReduce, kept as
// the benchmark baseline. Chunking and fold order match MapReduce exactly.
func SpawnMapReduce[T any](workers, n int, produce func(lo, hi int) T, combine func(a, b T) T, zero T) T {
	if n <= 0 {
		return zero
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return combine(zero, produce(0, n))
	}
	partials := make([]T, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		lo, hi := Bounds(n, workers, w)
		go func(w, lo, hi int) {
			defer wg.Done()
			partials[w] = produce(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	acc := zero
	for _, p := range partials {
		acc = combine(acc, p)
	}
	return acc
}

// spawnChunks is the spawn-per-call fallback for Pool.ForChunks: chunk
// indices and bounds are identical, only the execution vehicle differs.
func spawnChunks(chunks, n int, fn func(chunk, lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(chunks)
	for c := 0; c < chunks; c++ {
		lo, hi := Bounds(n, chunks, c)
		go func(c, lo, hi int) {
			defer wg.Done()
			fn(c, lo, hi)
		}(c, lo, hi)
	}
	wg.Wait()
}
