package par

import (
	"math"
	"sync/atomic"
	"testing"
)

func TestBoundsCoverExactly(t *testing.T) {
	for _, n := range []int{1, 7, 100, 1023} {
		for _, workers := range []int{1, 2, 3, 8, 16} {
			covered := 0
			prevHi := 0
			for w := 0; w < workers; w++ {
				lo, hi := Bounds(n, workers, w)
				if lo != prevHi {
					t.Fatalf("n=%d workers=%d chunk %d starts at %d, want %d", n, workers, w, lo, prevHi)
				}
				covered += hi - lo
				prevHi = hi
			}
			if covered != n || prevHi != n {
				t.Fatalf("n=%d workers=%d covered %d ended %d", n, workers, covered, prevHi)
			}
		}
	}
}

func TestForNVisitsEachIndexOnce(t *testing.T) {
	const n = 10000
	for _, workers := range []int{0, 1, 3, 7, 32} {
		counts := make([]int32, n)
		ForN(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&counts[i], 1)
			}
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d index %d visited %d times", workers, i, c)
			}
		}
	}
	// Degenerate inputs.
	called := false
	ForN(4, 0, func(lo, hi int) { called = true })
	if called {
		t.Error("ForN called fn for n=0")
	}
	ForN(100, 3, func(lo, hi int) {}) // workers > n must not panic
}

func TestForNDeterministicOutput(t *testing.T) {
	// A kernel writing only its own range yields bitwise-identical output
	// at every worker count.
	const n = 4096
	run := func(workers int) []float64 {
		out := make([]float64, n)
		ForN(workers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				x := float64(i) * 0.9999
				out[i] = math.Sin(x) * math.Exp(-x/1000)
			}
		})
		return out
	}
	ref := run(1)
	for _, workers := range []int{2, 5, 13} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d output differs at %d", workers, i)
			}
		}
	}
}

func TestMapReduceMin(t *testing.T) {
	const n = 100000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = math.Abs(math.Sin(float64(i)*1.7)) + 0.001
	}
	vals[73512] = 1e-9
	produce := func(lo, hi int) float64 {
		m := math.Inf(1)
		for i := lo; i < hi; i++ {
			if vals[i] < m {
				m = vals[i]
			}
		}
		return m
	}
	minOf := func(a, b float64) float64 {
		if a < b {
			return a
		}
		return b
	}
	ref := produce(0, n)
	for _, workers := range []int{1, 2, 4, 9, 64} {
		got := MapReduce(workers, n, produce, minOf, math.Inf(1))
		if got != ref {
			t.Fatalf("workers=%d min %g want %g", workers, got, ref)
		}
	}
	if got := MapReduce(4, 0, produce, minOf, math.Inf(1)); !math.IsInf(got, 1) {
		t.Error("empty MapReduce did not return zero value")
	}
}

func TestMapReduceSumDeterministicPerWorkerCount(t *testing.T) {
	const n = 50000
	produce := func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += 1.0 / float64(i+1)
		}
		return s
	}
	add := func(a, b float64) float64 { return a + b }
	for _, workers := range []int{1, 3, 8} {
		a := MapReduce(workers, n, produce, add, 0)
		b := MapReduce(workers, n, produce, add, 0)
		if a != b {
			t.Fatalf("workers=%d not deterministic: %x vs %x", workers, a, b)
		}
	}
}
