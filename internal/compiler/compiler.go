// Package compiler models compiler code-generation profiles for the
// paper's Table IV anomaly: nonvectorized SELF built with the GNU compiler
// ran *slower* in single precision than in double, while the Intel build
// behaved as expected.
//
// The paper leaves the mechanism open ("beyond the scope of this paper");
// this model encodes the standard explanations as counter transformations
// that feed the arch roofline:
//
//   - GNU profile: single-precision expressions are partially promoted
//     through double precision — double-precision literals and the
//     double-only libm drag float32 operands through convert/compute/
//     convert round trips, so the "single" build pays double-precision
//     compute PLUS conversion traffic.
//   - Intel profile: a genuine single-precision math library (SVML-style)
//     and more aggressive scalar code generation make single precision
//     cheaper than double even without SIMD pragmas.
//
// The transformations operate on measured instrumentation counters, so the
// same mini-app run can be "re-compiled" onto either profile and priced on
// any platform by internal/arch.
package compiler

import (
	"repro/internal/arch"
)

// Profile describes one compiler's code generation for these kernels.
type Profile struct {
	Name string
	// PromotedOpFraction is the share of single-precision arithmetic that
	// executes at double precision with conversions on entry and exit
	// (double literals, mixed-mode expressions).
	PromotedOpFraction float64
	// PromoteSingleMath promotes every single-precision transcendental
	// through the double-precision libm.
	PromoteSingleMath bool
	// SingleMathSpeedup divides the cost of single-precision
	// transcendentals (a real f32 math library is cheaper).
	SingleMathSpeedup float64
	// ScalarSingleBoost divides the cost of remaining single-precision
	// arithmetic (better scalar scheduling/partial SSE for narrow types).
	ScalarSingleBoost float64
	// FMAFactor scales all arithmetic cost (<1 = contraction of
	// multiply-adds into FMAs).
	FMAFactor float64
}

// GNU is the gcc/gfortran-style profile of the paper's Table IV runs.
var GNU = Profile{
	Name:               "GNU",
	PromotedOpFraction: 0.25,
	PromoteSingleMath:  true,
	SingleMathSpeedup:  1,
	ScalarSingleBoost:  1,
	FMAFactor:          1,
}

// Intel is the icc/ifort-style profile.
var Intel = Profile{
	Name:               "Intel",
	PromotedOpFraction: 0,
	PromoteSingleMath:  false,
	SingleMathSpeedup:  1.6,
	ScalarSingleBoost:  1.25,
	FMAFactor:          0.95,
}

// Profiles lists the Table IV columns.
var Profiles = []Profile{GNU, Intel}

// Transform rewrites the measured workload counters as this compiler would
// have generated the code. It affects only single-precision work; a pure
// double-precision workload changes only by the FMA factor.
func (p Profile) Transform(w arch.Workload) arch.Workload {
	c := w.Counters

	// Partial promotion of f32 arithmetic to f64 with conversions.
	if p.PromotedOpFraction > 0 && c.Flops32 > 0 {
		promoted := uint64(float64(c.Flops32) * p.PromotedOpFraction)
		c.Flops32 -= promoted
		c.Flops64 += promoted
		c.Conversions += 2 * promoted
	}
	// Transcendental handling.
	if c.Transcendental32 > 0 {
		if p.PromoteSingleMath {
			c.Transcendental64 += c.Transcendental32
			c.Conversions += 2 * c.Transcendental32
			c.Transcendental32 = 0
		} else if p.SingleMathSpeedup > 1 {
			c.Transcendental32 = uint64(float64(c.Transcendental32) / p.SingleMathSpeedup)
		}
	}
	// Scalar single-precision arithmetic boost.
	if p.ScalarSingleBoost > 1 && c.Flops32 > 0 {
		c.Flops32 = uint64(float64(c.Flops32) / p.ScalarSingleBoost)
	}
	// FMA contraction.
	if p.FMAFactor != 1 {
		c.Flops32 = uint64(float64(c.Flops32) * p.FMAFactor)
		c.Flops64 = uint64(float64(c.Flops64) * p.FMAFactor)
	}

	out := w
	out.Counters = c
	return out
}

// Predict composes Transform with the platform roofline.
func (p Profile) Predict(spec arch.Spec, w arch.Workload) float64 {
	return spec.Predict(p.Transform(w)).Seconds()
}
