package compiler

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/metrics"
)

// selfLike builds a nonvectorized SELF-shaped workload: transcendental-
// heavy (one EOS pow per node per stage) plus dense derivative arithmetic.
func selfLike(single bool) arch.Workload {
	const nodes = 4_000_000 // nodes × stages aggregate
	c := metrics.Counters{
		LoadBytes:  nodes * 5 * 4 * 4,
		StoreBytes: nodes * 5 * 4,
	}
	flops := uint64(nodes * 300)
	transc := uint64(nodes)
	if single {
		c.Flops32, c.Transcendental32 = flops, transc
	} else {
		c.Flops64, c.Transcendental64 = flops, transc
		c.LoadBytes *= 2
		c.StoreBytes *= 2
	}
	return arch.Workload{Counters: c, Vectorized: false, SerialOps: nodes / 10}
}

func TestGNUInversion(t *testing.T) {
	// Paper Table IV: with the GNU profile, nonvectorized single precision
	// is SLOWER than double.
	single := GNU.Predict(arch.Haswell, selfLike(true))
	double := GNU.Predict(arch.Haswell, selfLike(false))
	if single <= double {
		t.Errorf("GNU single %.3fs not slower than double %.3fs", single, double)
	}
	// But not absurdly slower (paper: 304 vs 262, ≈16%).
	if single > 1.6*double {
		t.Errorf("GNU inversion too large: %.3f vs %.3f", single, double)
	}
}

func TestIntelExpectedOrdering(t *testing.T) {
	single := Intel.Predict(arch.Haswell, selfLike(true))
	double := Intel.Predict(arch.Haswell, selfLike(false))
	if single >= double {
		t.Errorf("Intel single %.3fs not faster than double %.3fs", single, double)
	}
	// Paper: 186 vs 253, ≈26% faster.
	gain := double / single
	if gain < 1.1 || gain > 2.0 {
		t.Errorf("Intel single gain %.2f outside plausible band", gain)
	}
}

func TestDoublePrecisionNearlyCompilerIndependent(t *testing.T) {
	// Paper: GNU double 262s vs Intel double 253s — within a few percent.
	gnu := GNU.Predict(arch.Haswell, selfLike(false))
	intel := Intel.Predict(arch.Haswell, selfLike(false))
	ratio := gnu / intel
	if ratio < 1.0 || ratio > 1.15 {
		t.Errorf("double-precision compiler ratio %.3f, want slight Intel advantage", ratio)
	}
}

func TestTransformCounterEffects(t *testing.T) {
	w := arch.Workload{Counters: metrics.Counters{
		Flops32: 1000, Transcendental32: 100,
	}}
	g := GNU.Transform(w).Counters
	if g.Transcendental32 != 0 || g.Transcendental64 != 100 {
		t.Errorf("GNU did not promote transcendentals: %+v", g)
	}
	if g.Conversions == 0 {
		t.Error("GNU promotion recorded no conversions")
	}
	if g.Flops64 != 250 || g.Flops32 != 750 {
		t.Errorf("GNU promoted-op split wrong: f32=%d f64=%d", g.Flops32, g.Flops64)
	}
	i := Intel.Transform(w).Counters
	if i.Transcendental32 >= 100 {
		t.Errorf("Intel single math not discounted: %d", i.Transcendental32)
	}
	if i.Transcendental64 != 0 || i.Conversions != 0 {
		t.Errorf("Intel promoted something: %+v", i)
	}
	// Pure double workloads change only via FMA.
	wd := arch.Workload{Counters: metrics.Counters{Flops64: 1000, Transcendental64: 10}}
	gd := GNU.Transform(wd).Counters
	if gd != wd.Counters {
		t.Errorf("GNU altered a double workload: %+v", gd)
	}
	id := Intel.Transform(wd).Counters
	if id.Flops64 != 950 {
		t.Errorf("Intel FMA factor missing: %d", id.Flops64)
	}
	if id.Transcendental64 != 10 {
		t.Errorf("Intel altered double transcendentals: %d", id.Transcendental64)
	}
}

func TestTransformDoesNotMutateInput(t *testing.T) {
	w := arch.Workload{Counters: metrics.Counters{Flops32: 1000, Transcendental32: 50}}
	_ = GNU.Transform(w)
	if w.Counters.Flops32 != 1000 || w.Counters.Transcendental32 != 50 {
		t.Error("Transform mutated its input")
	}
}

func TestProfileNames(t *testing.T) {
	if GNU.Name != "GNU" || Intel.Name != "Intel" {
		t.Error("profile names wrong")
	}
	if len(Profiles) != 2 {
		t.Error("Profiles list incomplete")
	}
}
