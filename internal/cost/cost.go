// Package cost reproduces the paper's §VI cost analysis (Table VII): the
// price of running the mini-apps on commercial cloud services, with the
// paper's own scaling rules — runtimes on Haswell scaled from seconds to
// hours per week on an EC2 c4.8xlarge, checkpoint storage on S3 standard +
// infrequent-access tiers, compute halved and storage decimated for SELF,
// storage divided by five for CLAMR.
package cost

import (
	"fmt"
)

// Rates holds the cloud service prices.
type Rates struct {
	// EC2PerHour is the on-demand instance rate (c4.8xlarge).
	EC2PerHour float64
	// S3StandardPerGBMonth and S3IAPerGBMonth are the storage tiers.
	S3StandardPerGBMonth float64
	S3IAPerGBMonth       float64
	// CalculatorOverhead multiplies compute cost to account for the extra
	// line items of the AWS monthly calculator the paper used (EBS volume,
	// egress allowance). Calibrated so the paper's Table VII reproduces.
	CalculatorOverhead float64
}

// AWS2017 is the mid-2017 us-east pricing used by the paper's estimates.
var AWS2017 = Rates{
	EC2PerHour:           1.591,
	S3StandardPerGBMonth: 0.023,
	S3IAPerGBMonth:       0.0125,
	CalculatorOverhead:   1.2337,
}

// weeksPerMonth follows the AWS monthly calculator convention.
const weeksPerMonth = 4.348

// Scenario describes one application's usage pattern under the paper's
// scaling rules.
type Scenario struct {
	App string
	// RuntimeSeconds is the measured Haswell runtime; the paper reuses the
	// number as hours per week of instance utilisation.
	RuntimeSeconds float64
	// ComputeScale further scales utilisation (paper: 1.0 CLAMR, 0.5 SELF
	// — "we scaled the compute time down by 50%").
	ComputeScale float64
	// CheckpointGB is the size of one checkpoint at this precision.
	CheckpointGB float64
	// CheckpointCount is the number of retained checkpoints in the
	// campaign (split across the standard and infrequent-access tiers).
	CheckpointCount float64
	// StorageDivisor reduces stored volume for longer runs with fewer
	// outputs (paper: 5 CLAMR, 10 SELF).
	StorageDivisor float64
}

// Breakdown is one Table VII column.
type Breakdown struct {
	App            string
	Compute        float64
	Storage        float64
	Total          float64
	RuntimeSeconds float64
	CheckpointGB   float64
}

// Cost prices a scenario.
func (r Rates) Cost(s Scenario) (Breakdown, error) {
	if s.RuntimeSeconds < 0 || s.CheckpointGB < 0 || s.CheckpointCount < 0 {
		return Breakdown{}, fmt.Errorf("cost: negative scenario values: %+v", s)
	}
	if s.ComputeScale == 0 {
		s.ComputeScale = 1
	}
	if s.StorageDivisor == 0 {
		s.StorageDivisor = 1
	}
	hoursPerWeek := s.RuntimeSeconds * s.ComputeScale
	compute := hoursPerWeek * weeksPerMonth * r.EC2PerHour * r.CalculatorOverhead
	storedGBMonths := s.CheckpointGB * s.CheckpointCount / s.StorageDivisor
	storage := storedGBMonths * (r.S3StandardPerGBMonth + r.S3IAPerGBMonth)
	return Breakdown{
		App:            s.App,
		Compute:        compute,
		Storage:        storage,
		Total:          compute + storage,
		RuntimeSeconds: s.RuntimeSeconds,
		CheckpointGB:   s.CheckpointGB,
	}, nil
}

// JobDollars prices one job directly — no weekly-usage scaling — for the
// fleet's per-job cost accounting: modeled compute seconds billed at the
// hourly instance rate (with the calculator overhead the paper's estimates
// carry), plus one month of standard-tier storage for the job's checkpoint
// bytes. Small by construction; campaigns sum it into $/experiment.
func (r Rates) JobDollars(computeSeconds float64, checkpointBytes uint64) float64 {
	if computeSeconds < 0 {
		computeSeconds = 0
	}
	compute := computeSeconds / 3600 * r.EC2PerHour * r.CalculatorOverhead
	storage := float64(checkpointBytes) / 1e9 * r.S3StandardPerGBMonth
	return compute + storage
}

// Savings returns the fractional saving of b relative to baseline
// (e.g. 0.23 = 23% cheaper).
func Savings(b, baseline Breakdown) float64 {
	if baseline.Total == 0 {
		return 0
	}
	return 1 - b.Total/baseline.Total
}

// PaperCLAMRScenario builds the paper's CLAMR usage pattern for a measured
// runtime (seconds) and checkpoint size (GB).
func PaperCLAMRScenario(runtimeSec, checkpointGB float64) Scenario {
	return Scenario{
		App:             "CLAMR",
		RuntimeSeconds:  runtimeSec,
		ComputeScale:    1,
		CheckpointGB:    checkpointGB,
		CheckpointCount: 200_000,
		StorageDivisor:  5,
	}
}

// PaperSELFScenario builds the paper's SELF usage pattern. The paper holds
// SELF storage constant across precisions (its Table VII lists the same
// storage cost for both), so checkpointGB should be the double-precision
// size for both columns.
func PaperSELFScenario(runtimeSec, checkpointGB float64) Scenario {
	return Scenario{
		App:             "SELF",
		RuntimeSeconds:  runtimeSec,
		ComputeScale:    0.5,
		CheckpointGB:    checkpointGB,
		CheckpointCount: 223_264,
		StorageDivisor:  10,
	}
}
