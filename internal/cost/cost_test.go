package cost

import (
	"math"
	"testing"
	"testing/quick"
)

// Paper Table VII targets.
const (
	paperCLAMRFullCompute = 267.07
	paperCLAMRFullStorage = 181.56
	paperCLAMRMinCompute  = 223.22
	paperCLAMRMinStorage  = 121.66
	paperSELFFullCompute  = 1157.94
	paperSELFSingleComp   = 763.32
	paperSELFStorage      = 792.59
)

// within reports |got-want|/want ≤ tol.
func within(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Abs(want)
}

func TestCLAMRTableVII(t *testing.T) {
	// Paper inputs: Haswell runtimes 31.3 s (full) / 26.3 s (min),
	// checkpoint sizes 128 MB / 86 MB (Table III).
	full, err := AWS2017.Cost(PaperCLAMRScenario(31.3, 0.128))
	if err != nil {
		t.Fatal(err)
	}
	min, err := AWS2017.Cost(PaperCLAMRScenario(26.3, 0.086))
	if err != nil {
		t.Fatal(err)
	}
	if !within(full.Compute, paperCLAMRFullCompute, 0.02) {
		t.Errorf("CLAMR full compute $%.2f, paper $%.2f", full.Compute, paperCLAMRFullCompute)
	}
	if !within(full.Storage, paperCLAMRFullStorage, 0.02) {
		t.Errorf("CLAMR full storage $%.2f, paper $%.2f", full.Storage, paperCLAMRFullStorage)
	}
	if !within(min.Compute, paperCLAMRMinCompute, 0.02) {
		t.Errorf("CLAMR min compute $%.2f, paper $%.2f", min.Compute, paperCLAMRMinCompute)
	}
	if !within(min.Storage, paperCLAMRMinStorage, 0.02) {
		t.Errorf("CLAMR min storage $%.2f, paper $%.2f", min.Storage, paperCLAMRMinStorage)
	}
	// Headline claim: up to 23% saved with minimum precision.
	s := Savings(min, full)
	if s < 0.20 || s > 0.26 {
		t.Errorf("CLAMR min savings %.1f%%, paper ≈23%%", 100*s)
	}
	if full.Total != full.Compute+full.Storage {
		t.Error("total != compute + storage")
	}
}

func TestSELFTableVII(t *testing.T) {
	// Paper inputs: Haswell runtimes 270.4 s (double) / 179.5 s (single);
	// storage held constant across precisions (1 GB reference dump).
	double, err := AWS2017.Cost(PaperSELFScenario(270.4, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	single, err := AWS2017.Cost(PaperSELFScenario(179.5, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if !within(double.Compute, paperSELFFullCompute, 0.02) {
		t.Errorf("SELF double compute $%.2f, paper $%.2f", double.Compute, paperSELFFullCompute)
	}
	if !within(single.Compute, paperSELFSingleComp, 0.02) {
		t.Errorf("SELF single compute $%.2f, paper $%.2f", single.Compute, paperSELFSingleComp)
	}
	if !within(double.Storage, paperSELFStorage, 0.02) {
		t.Errorf("SELF storage $%.2f, paper $%.2f", double.Storage, paperSELFStorage)
	}
	if single.Storage != double.Storage {
		t.Error("SELF storage should be precision-independent in the paper's model")
	}
	// Headline claim: up to 20% saved with single precision.
	s := Savings(single, double)
	if s < 0.17 || s > 0.24 {
		t.Errorf("SELF single savings %.1f%%, paper ≈20%%", 100*s)
	}
}

func TestScenarioDefaults(t *testing.T) {
	b, err := AWS2017.Cost(Scenario{App: "x", RuntimeSeconds: 10, CheckpointGB: 1, CheckpointCount: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Defaults: ComputeScale 1, StorageDivisor 1.
	wantStorage := 1.0 * 100 * (0.023 + 0.0125)
	if !within(b.Storage, wantStorage, 1e-12) {
		t.Errorf("default storage $%.4f, want $%.4f", b.Storage, wantStorage)
	}
	if b.Compute <= 0 {
		t.Error("compute cost not positive")
	}
}

func TestCostRejectsNegative(t *testing.T) {
	if _, err := AWS2017.Cost(Scenario{RuntimeSeconds: -1}); err == nil {
		t.Error("negative runtime accepted")
	}
	if _, err := AWS2017.Cost(Scenario{CheckpointGB: -1}); err == nil {
		t.Error("negative checkpoint size accepted")
	}
}

func TestSavingsEdgeCases(t *testing.T) {
	if Savings(Breakdown{Total: 50}, Breakdown{Total: 0}) != 0 {
		t.Error("zero baseline did not return 0")
	}
	if got := Savings(Breakdown{Total: 80}, Breakdown{Total: 100}); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Savings = %g, want 0.2", got)
	}
	// Negative savings when the candidate is pricier.
	if got := Savings(Breakdown{Total: 120}, Breakdown{Total: 100}); got >= 0 {
		t.Errorf("pricier candidate shows savings %g", got)
	}
}

func TestCostMonotoneProperties(t *testing.T) {
	// Compute cost is monotone in runtime, storage in checkpoint size.
	if err := quick.Check(func(r1, r2, g float64) bool {
		r1 = math.Abs(math.Mod(r1, 1e4))
		r2 = math.Abs(math.Mod(r2, 1e4))
		g = math.Abs(math.Mod(g, 100)) + 0.01
		lo, hi := math.Min(r1, r2), math.Max(r1, r2)
		a, err1 := AWS2017.Cost(PaperCLAMRScenario(lo, g))
		b, err2 := AWS2017.Cost(PaperCLAMRScenario(hi, g))
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Compute <= b.Compute && a.Storage == b.Storage
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	if err := quick.Check(func(g1, g2 float64) bool {
		g1 = math.Abs(math.Mod(g1, 100))
		g2 = math.Abs(math.Mod(g2, 100))
		lo, hi := math.Min(g1, g2), math.Max(g1, g2)
		a, err1 := AWS2017.Cost(PaperSELFScenario(100, lo))
		b, err2 := AWS2017.Cost(PaperSELFScenario(100, hi))
		if err1 != nil || err2 != nil {
			return false
		}
		return a.Storage <= b.Storage && a.Compute == b.Compute
	}, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
