package clamr

import (
	"bytes"
	"testing"

	"repro/internal/precision"
)

// TestRestartBitExact: run → checkpoint → load → continue must match an
// uninterrupted run bitwise (the checkpoint stores state at full storage
// width and the mesh exactly, and dt is recomputed from state).
func TestRestartBitExact(t *testing.T) {
	for _, mode := range []precision.Mode{precision.Min, precision.Mixed, precision.Full} {
		cfg := testConfig(KernelFace, 1)
		cfg.AMRInterval = 7 // odd cadence so adaptation straddles the split

		straight, err := New(mode, cfg, testIC(cfg))
		if err != nil {
			t.Fatal(err)
		}
		if err := straight.Run(50); err != nil {
			t.Fatal(err)
		}

		first, err := New(mode, cfg, testIC(cfg))
		if err != nil {
			t.Fatal(err)
		}
		if err := first.Run(30); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := first.WriteCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		resumed, err := Load(mode, cfg, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if resumed.StepCount() != 30 || resumed.Time() != first.Time() {
			t.Fatalf("%v: restored step=%d time=%g, want 30/%g",
				mode, resumed.StepCount(), resumed.Time(), first.Time())
		}
		if err := resumed.Run(20); err != nil {
			t.Fatal(err)
		}

		hs, hr := straight.HeightF64(), resumed.HeightF64()
		if len(hs) != len(hr) {
			t.Fatalf("%v: cell counts diverged %d vs %d", mode, len(hs), len(hr))
		}
		for i := range hs {
			if hs[i] != hr[i] {
				t.Fatalf("%v: cell %d differs after restart: %x vs %x", mode, i, hs[i], hr[i])
			}
		}
	}
}

func TestRestartErrors(t *testing.T) {
	cfg := testConfig(KernelFace, 1)
	r, err := New(precision.Full, cfg, testIC(cfg))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := r.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := Load(precision.Full, cfg, bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage checkpoint accepted")
	}
	// MaxLevel too small for the stored cells.
	small := cfg
	small.MaxLevel = 0
	if _, err := Load(precision.Full, small, bytes.NewReader(good)); err == nil {
		t.Error("checkpoint with deeper cells than MaxLevel accepted")
	}
	// Mismatched grid makes the cell list invalid.
	wrong := cfg
	wrong.NX = 7
	if _, err := Load(precision.Full, wrong, bytes.NewReader(good)); err == nil {
		t.Error("checkpoint restored onto a different grid")
	}
	if _, err := Load(precision.Half, cfg, bytes.NewReader(good)); err == nil {
		t.Error("half-mode restart accepted")
	}
}

// TestRestartPromotion: a single-precision checkpoint may restart in full
// precision (values widen exactly); the run continues stably.
func TestRestartPromotion(t *testing.T) {
	cfg := testConfig(KernelFace, 1)
	r, err := New(precision.Min, cfg, testIC(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(25); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := r.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	promoted, err := Load(precision.Full, cfg, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := promoted.Run(25); err != nil {
		t.Fatal(err)
	}
	if drift := promoted.MassError(); drift > 1e-11 {
		t.Errorf("promoted restart mass drift %g", drift)
	}
}
