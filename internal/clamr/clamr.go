// Package clamr implements a cell-based AMR shallow-water mini-app modeled
// on LANL's CLAMR: the hydrodynamics the paper runs its CLAMR precision
// study on. The solver integrates the 2-D shallow water equations with a
// finite-volume Rusanov scheme on the quadtree mesh of internal/mesh,
// refining on height gradients, with reflective walls — the cylindrical
// dam-break configuration of the paper's §V.A.
//
// Precision follows the paper's compile options exactly, expressed as the
// two generic parameters of Solver[S, C]: S is the storage type of the
// large physical state arrays and C the type local calculations promote to.
//
//	Min   — Solver[float32, float32]
//	Mixed — Solver[float32, float64]
//	Full  — Solver[float64, float64]
//
// Two interchangeable implementations of the dominant finite-difference
// kernel are provided (the paper's Table III vectorization study): a
// cell-centric scalar kernel that gathers neighbors per cell and computes
// each face flux twice (the "unvectorized" profile), and a face-centric
// kernel over precomputed SoA face lists with unrolled inner loops and
// single flux evaluation (the "vectorized" profile).
package clamr

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/precision"
	"repro/internal/reduce"
)

// Kernel selects the finite-difference implementation.
type Kernel int

const (
	// KernelCell is the cell-centric scalar kernel ("unvectorized").
	KernelCell Kernel = iota
	// KernelFace is the face-centric SoA kernel ("vectorized").
	KernelFace
)

// String names the kernel as the vectorization study labels it.
func (k Kernel) String() string {
	if k == KernelFace {
		return "vectorized"
	}
	return "unvectorized"
}

// Config describes a CLAMR run.
type Config struct {
	// NX, NY are the coarse-grid dimensions.
	NX, NY int
	// MaxLevel is the number of AMR levels above the coarse grid.
	MaxLevel int
	// Bounds is the physical domain; zero value means [0,1]².
	Bounds mesh.Bounds
	// Gravity is the gravitational acceleration (default 9.80).
	Gravity float64
	// Courant is the CFL number (default 0.25).
	Courant float64
	// Kernel selects the finite-difference implementation.
	Kernel Kernel
	// AMRInterval is the number of steps between mesh adaptations;
	// 0 disables AMR after initial refinement.
	AMRInterval int
	// RefineTol and CoarsenTol are relative height-jump thresholds for
	// refinement and coarsening (defaults 0.02 and 0.004).
	RefineTol, CoarsenTol float64
	// InitialAdaptPasses refines the initial condition this many times so
	// the starting mesh resolves the dam wall (default MaxLevel).
	InitialAdaptPasses int
	// Workers runs the finite-difference, update and timestep passes
	// fork-join parallel over this many chunks (≤1 = serial), dispatched
	// on the shared persistent par pool. The parallel sweeps are
	// bit-identical to the serial ones at any worker count (disjoint
	// writes; exact min-reduction; fixed scatter order).
	Workers int
	// DryTol is the dry-cell height floor: cells with h ≤ DryTol are
	// treated as dry in the CFL scan, and flux velocity divisions clamp
	// their denominator to at least DryTol, so a subnormal-but-positive
	// height at reduced compute precision cannot overflow hu/h. Zero
	// selects a precision-appropriate default (1e-6 for float32 compute,
	// 1e-12 for float64); negative disables the floor entirely (the bare
	// h ≤ 0 guard of the original kernels).
	DryTol float64
}

func (c *Config) setDefaults() {
	if c.Bounds == (mesh.Bounds{}) {
		c.Bounds = mesh.UnitBounds
	}
	if c.Gravity == 0 {
		c.Gravity = 9.80
	}
	if c.Courant == 0 {
		c.Courant = 0.25
	}
	if c.RefineTol == 0 {
		c.RefineTol = 0.02
	}
	if c.CoarsenTol == 0 {
		c.CoarsenTol = 0.004
	}
	if c.InitialAdaptPasses == 0 {
		c.InitialAdaptPasses = c.MaxLevel
	}
}

// InitialCondition maps a physical point to primitive state
// (height, x-velocity, y-velocity).
type InitialCondition func(x, y float64) (h, u, v float64)

// DamBreak returns the paper's cylindrical dam-break initial condition: a
// column of height hIn and radius r centered in the domain over a
// background of height hOut, with a smooth transition of width w to keep
// the initial data resolvable (w ≤ 0 selects a sharp step).
func DamBreak(b mesh.Bounds, hIn, hOut, r, w float64) InitialCondition {
	cx := (b.XMin + b.XMax) / 2
	cy := (b.YMin + b.YMax) / 2
	return func(x, y float64) (float64, float64, float64) {
		d := math.Hypot(x-cx, y-cy)
		if w <= 0 {
			if d < r {
				return hIn, 0, 0
			}
			return hOut, 0, 0
		}
		h := hOut + (hIn-hOut)*0.5*(1-math.Tanh((d-r)/w))
		return h, 0, 0
	}
}

// Solver integrates the shallow water equations with storage precision S
// and compute precision C.
type Solver[S, C precision.Real] struct {
	cfg  Config
	mesh *mesh.Mesh

	// Conserved state: height, x-momentum, y-momentum (the "large physical
	// state arrays" the paper's mixed mode keeps in single precision).
	h, hu, hv []S
	// RHS accumulators. Stored at storage precision like every other large
	// array (the paper's mixed mode promotes only local calculations);
	// flux arithmetic happens in C and rounds on accumulation.
	dh, dhu, dhv []S

	faces     faceList[C]
	time      float64
	step      int
	counters  metrics.Counters
	timer     *metrics.Timer
	alloc     *metrics.AllocTracker
	massDrift float64 // |mass(t)-mass(0)| / mass(0), updated by MassError
	mass0     float64

	// Parallel runtime: the shared persistent pool, a reusable reduction
	// for the CFL scan, and kernels prebound once at construction so the
	// steady-state step loop dispatches without allocating. Per-dispatch
	// parameters travel through curDT.
	pool      *par.Pool
	dtRed     *par.Reducer[float64]
	curDT     C
	dry       C // dry-cell height floor at compute precision
	parZero   func(lo, hi int)
	parFluxX  func(lo, hi int)
	parFluxY  func(lo, hi int)
	parUpdate func(lo, hi int)
	parCell   func(lo, hi int)
	parFlag   func(lo, hi int)
	dtProduce func(lo, hi int) float64

	// AMR scratch reused across adaptations: the flag buffer and the
	// ping-pong state buffers ApplyRemapInto writes into.
	flags              []mesh.RefineFlag
	hAlt, huAlt, hvAlt []S
	prolong            func(S) [4]S
	restrict           func([4]S) S

	// Preresolved timer buckets (allocation-free phase timing).
	phDT, phFD, phAMR metrics.PhaseCell
	// Preresolved per-step duration histogram in the process-wide obs
	// registry (allocation-free Observe; served at precisiond's /metrics).
	stepDur *obs.Histogram
}

// NewSolver creates a solver and applies the initial condition, including
// the initial adaptation passes.
func NewSolver[S, C precision.Real](cfg Config, ic InitialCondition) (*Solver[S, C], error) {
	cfg.setDefaults()
	m, err := mesh.New(cfg.NX, cfg.NY, cfg.MaxLevel, cfg.Bounds)
	if err != nil {
		return nil, fmt.Errorf("clamr: %w", err)
	}
	s := &Solver[S, C]{
		cfg:   cfg,
		mesh:  m,
		timer: metrics.NewTimer(),
		alloc: metrics.NewAllocTracker(),
	}
	s.initRuntime()
	s.applyIC(ic)
	// Refine the initial condition so the dam wall is resolved at the
	// finest level before time stepping begins.
	for pass := 0; pass < cfg.InitialAdaptPasses; pass++ {
		if err := s.adapt(); err != nil {
			return nil, err
		}
		s.applyIC(ic) // re-evaluate analytically on the finer mesh
	}
	s.rebuildWorkspace()
	s.mass0 = s.Mass()
	return s, nil
}

// initRuntime wires the solver to the shared persistent pool and sets up
// everything the allocation-free step loop needs: the reusable CFL
// reduction, preresolved timer cells, the dry floor, the remap operators,
// and the prebound parallel kernels. Both construction paths (NewSolver and
// checkpoint restore) call it.
func (s *Solver[S, C]) initRuntime() {
	s.pool = par.Default()
	s.dtRed = par.NewReducer[float64](s.pool)
	s.phDT = s.timer.Cell("timestep")
	s.phFD = s.timer.Cell("finite_diff")
	s.phAMR = s.timer.Cell("amr")
	s.stepDur = obs.StepDuration("clamr", modeLabel[S, C]())
	switch {
	case s.cfg.DryTol > 0:
		s.dry = C(s.cfg.DryTol)
	case s.cfg.DryTol < 0:
		s.dry = 0
	default:
		if unsafeSizeofS[C]() == 4 {
			s.dry = C(1e-6)
		} else {
			s.dry = C(1e-12)
		}
	}
	s.prolong = mesh.InjectProlong[S]()
	s.restrict = mesh.MeanRestrict[S]()
	s.bindKernels()
}

// applyIC evaluates the initial condition at every cell center.
func (s *Solver[S, C]) applyIC(ic InitialCondition) {
	n := s.mesh.NumCells()
	s.h = make([]S, n)
	s.hu = make([]S, n)
	s.hv = make([]S, n)
	for i := 0; i < n; i++ {
		x, y := s.mesh.Center(i)
		h, u, v := ic(x, y)
		s.h[i] = S(h)
		s.hu[i] = S(h * u)
		s.hv[i] = S(h * v)
	}
}

// rebuildWorkspace resizes scratch arrays and the face list after the mesh
// changes, and refreshes the memory accounting. All buffers are grow-only
// and the face list rebuilds into its existing backing arrays, so at steady
// state (and across adaptations that do not grow the mesh) the workspace
// allocates nothing.
func (s *Solver[S, C]) rebuildWorkspace() {
	n := s.mesh.NumCells()
	s.dh = growSlice(s.dh, n)
	s.dhu = growSlice(s.dhu, n)
	s.dhv = growSlice(s.dhv, n)
	s.faces.rebuild(s.mesh)

	var sv S
	var cv C
	sBytes := uint64(unsafeSizeof(sv))
	cBytes := uint64(unsafeSizeof(cv))
	for _, label := range []string{"state", "rhs", "mesh", "faces"} {
		s.alloc.Release(label, ^uint64(0))
	}
	s.alloc.Register("state", 3*uint64(n)*sBytes)
	s.alloc.Register("rhs", 3*uint64(n)*sBytes)
	s.alloc.Register("mesh", uint64(n)*uint64(9+8)) // cells + hash entry estimate
	nFaces := uint64(len(s.faces.xl) + len(s.faces.yb) + len(s.faces.bCell))
	s.alloc.Register("faces", nFaces*(2*4+uint64(cBytes))+uint64(n)*uint64(cBytes))
}

// growSlice returns a slice of length n, reusing xs's backing array when
// its capacity suffices. Contents are unspecified; callers overwrite fully.
func growSlice[T any](xs []T, n int) []T {
	if cap(xs) < n {
		return make([]T, n)
	}
	return xs[:n]
}

// unsafeSizeof avoids importing unsafe for the two cases we need.
func unsafeSizeof(v any) int {
	switch v.(type) {
	case float32:
		return 4
	case float64:
		return 8
	default:
		return 8
	}
}

// Mesh exposes the underlying AMR mesh.
func (s *Solver[S, C]) Mesh() *mesh.Mesh { return s.mesh }

// Time returns the current simulation time.
func (s *Solver[S, C]) Time() float64 { return s.time }

// StepCount returns the number of completed steps.
func (s *Solver[S, C]) StepCount() int { return s.step }

// Counters returns the accumulated operation counts.
func (s *Solver[S, C]) Counters() metrics.Counters { return s.counters }

// Timer returns the phase timer (buckets: finite_diff, timestep, amr).
func (s *Solver[S, C]) Timer() *metrics.Timer { return s.timer }

// StateBytes returns the tracked resident memory of the solver.
func (s *Solver[S, C]) StateBytes() uint64 { return s.alloc.Current() }

// HeightF64 returns the cell heights widened to float64.
func (s *Solver[S, C]) HeightF64() []float64 {
	out := make([]float64, len(s.h))
	for i, v := range s.h {
		out[i] = float64(v)
	}
	return out
}

// VelocityF64 returns cell velocities (u, v) widened to float64.
func (s *Solver[S, C]) VelocityF64() (u, v []float64) {
	u = make([]float64, len(s.h))
	v = make([]float64, len(s.h))
	for i := range s.h {
		h := float64(s.h[i])
		if h > 0 {
			u[i] = float64(s.hu[i]) / h
			v[i] = float64(s.hv[i]) / h
		}
	}
	return u, v
}

// Mass returns the total water volume ∑ h·A computed with the reproducible
// summation of internal/reduce — the paper's §III.C practice of raising the
// precision of global sums while the rest of the computation runs reduced.
func (s *Solver[S, C]) Mass() float64 {
	terms := make([]float64, len(s.h))
	for i := range s.h {
		terms[i] = float64(s.h[i]) * s.mesh.Area(i)
	}
	return reduce.SumReproducible(terms)
}

// MassError returns |mass(t) − mass(0)| / mass(0).
func (s *Solver[S, C]) MassError() float64 {
	if s.mass0 == 0 {
		return 0
	}
	s.massDrift = math.Abs(s.Mass()-s.mass0) / s.mass0
	return s.massDrift
}

// massTol is the conservation-drift sentinel threshold at storage width.
// These are blow-up detectors, not precision audits: orders of magnitude
// above healthy drift at each width, so a legitimate reduced-precision run
// never trips them while a diverging one does within a guard interval.
func (s *Solver[S, C]) massTol() float64 {
	if unsafeSizeofS[S]() == 4 {
		return 1e-2
	}
	return 1e-6
}

// CheckHealth is the step loop's numerical sentinel: every state value must
// be finite and total mass must remain within the storage precision's drift
// tolerance. Failures wrap precision.ErrNumericalFailure so the serving
// layer can escalate the precision mode instead of retrying blindly. Cost
// is one pass over the state arrays plus a reproducible mass sum, so it is
// meant to run every few steps, not every step.
func (s *Solver[S, C]) CheckHealth() error {
	return s.checkHealthTol(s.massTol())
}

func (s *Solver[S, C]) checkHealthTol(massTol float64) error {
	for i := range s.h {
		h, hu, hv := float64(s.h[i]), float64(s.hu[i]), float64(s.hv[i])
		if !isFinite(h) || !isFinite(hu) || !isFinite(hv) {
			return fmt.Errorf("clamr: step %d: non-finite state at cell %d (h=%g hu=%g hv=%g): %w",
				s.step, i, h, hu, hv, precision.ErrNumericalFailure)
		}
	}
	if drift := s.MassError(); drift > massTol {
		return fmt.Errorf("clamr: step %d: mass drift %.3g exceeds tolerance %.3g: %w",
			s.step, drift, massTol, precision.ErrNumericalFailure)
	}
	return nil
}

func isFinite(x float64) bool {
	return !math.IsNaN(x) && !math.IsInf(x, 0)
}

// Step advances one timestep: dt from the CFL condition, the finite
// difference sweep, and (on schedule) mesh adaptation.
func (s *Solver[S, C]) Step() error {
	startStep := time.Now()
	dt := s.computeDT()
	if !(dt > 0) || math.IsInf(dt, 0) {
		return fmt.Errorf("clamr: step %d: non-positive or non-finite dt %g (state blew up?): %w",
			s.step, dt, precision.ErrNumericalFailure)
	}
	startFD := time.Now()
	switch s.cfg.Kernel {
	case KernelFace:
		s.finiteDiffFace(C(dt))
	default:
		s.finiteDiffCell(C(dt))
	}
	s.phFD.Observe(startFD)
	s.time += dt
	s.step++
	if s.cfg.AMRInterval > 0 && s.step%s.cfg.AMRInterval == 0 {
		startAMR := time.Now()
		err := s.adapt()
		s.rebuildWorkspace()
		s.phAMR.Observe(startAMR)
		if err != nil {
			s.stepDur.ObserveSince(startStep)
			return err
		}
	}
	s.stepDur.ObserveSince(startStep)
	return nil
}

// Run advances n steps.
func (s *Solver[S, C]) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// computeDT evaluates the CFL timestep at compute precision C via the
// reusable pooled min-reduction (exact minimum — bit-identical at every
// worker count). Cells at or below the dry floor are skipped.
func (s *Solver[S, C]) computeDT() float64 {
	start := time.Now()
	n := s.mesh.NumCells()
	minRatio := s.dtRed.Reduce(s.cfg.Workers, n, s.dtProduce, math.Min, math.Inf(1))
	s.counters.Add(metrics.Counters{LoadBytes: uint64(n) * 3 * uint64(unsafeSizeofS[S]())})
	s.addFlops(uint64(n)*8, 0)
	s.addTranscendental(uint64(n))
	s.phDT.Observe(start)
	return s.cfg.Courant * minRatio
}

// bindKernels creates the parallel kernel closures once; they capture only
// the solver, reading per-dispatch parameters (curDT, the current face
// list, the flag buffer) through it, so repeated dispatch allocates
// nothing.
func (s *Solver[S, C]) bindKernels() {
	s.parZero = func(lo, hi int) {
		clear(s.dh[lo:hi])
		clear(s.dhu[lo:hi])
		clear(s.dhv[lo:hi])
	}
	s.parFluxX = func(lo, hi int) {
		g := C(s.cfg.Gravity)
		fl := &s.faces
		for k := lo; k < hi; k++ {
			l, r := fl.xl[k], fl.xr[k]
			fl.fxh[k], fl.fxhu[k], fl.fxhv[k] = rusanovX(g, s.dry,
				C(s.h[l]), C(s.hu[l]), C(s.hv[l]), C(s.h[r]), C(s.hu[r]), C(s.hv[r]))
		}
	}
	s.parFluxY = func(lo, hi int) {
		g := C(s.cfg.Gravity)
		fl := &s.faces
		for k := lo; k < hi; k++ {
			b, tp := fl.yb[k], fl.yt[k]
			fl.fyh[k], fl.fyhu[k], fl.fyhv[k] = rusanovY(g, s.dry,
				C(s.h[b]), C(s.hu[b]), C(s.hv[b]), C(s.h[tp]), C(s.hu[tp]), C(s.hv[tp]))
		}
	}
	s.parUpdate = func(lo, hi int) {
		dt := s.curDT
		fl := &s.faces
		for i := lo; i < hi; i++ {
			coef := dt * fl.invArea[i]
			s.h[i] = S(C(s.h[i]) + coef*C(s.dh[i]))
			s.hu[i] = S(C(s.hu[i]) + coef*C(s.dhu[i]))
			s.hv[i] = S(C(s.hv[i]) + coef*C(s.dhv[i]))
		}
	}
	s.parCell = func(lo, hi int) {
		g := C(s.cfg.Gravity)
		m := s.mesh
		for i := lo; i < hi; i++ {
			s.cellRHS(m, g, i)
		}
	}
	s.dtProduce = func(lo, hi int) float64 {
		g := C(s.cfg.Gravity)
		m := math.Inf(1)
		for i := lo; i < hi; i++ {
			h := C(s.h[i])
			if h <= s.dry {
				continue
			}
			u := C(s.hu[i]) / h
			v := C(s.hv[i]) / h
			c := C(math.Sqrt(float64(g * h)))
			dx, dy := s.mesh.CellSize(s.mesh.Cell(i).Level)
			rx := dx / float64(absC(u)+c)
			ry := dy / float64(absC(v)+c)
			if rx < m {
				m = rx
			}
			if ry < m {
				m = ry
			}
		}
		return m
	}
	s.parFlag = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			hi0 := float64(s.h[i])
			maxJump := 0.0
			nb := s.mesh.Neighbors(i)
			for side := mesh.Left; side <= mesh.Top; side++ {
				for _, nIdx := range nb.On(side) {
					if d := math.Abs(float64(s.h[nIdx]) - hi0); d > maxJump {
						maxJump = d
					}
				}
			}
			rel := maxJump / math.Max(hi0, 1e-12)
			var f mesh.RefineFlag
			switch {
			case rel > s.cfg.RefineTol:
				f = mesh.Refine
			case rel < s.cfg.CoarsenTol:
				f = mesh.Coarsen
			}
			s.flags[i] = f
		}
	}
}

func absC[C precision.Real](x C) C {
	if x < 0 {
		return -x
	}
	return x
}

func unsafeSizeofS[S precision.Real]() int {
	var v S
	return unsafeSizeof(v)
}

// modeLabel maps the storage/compute widths back to the precision-mode
// label the step-duration metric carries. The Half adapter reuses the
// (f32, f32) solver; clamr.New relabels it.
func modeLabel[S, C precision.Real]() string {
	switch {
	case unsafeSizeofS[S]() == 8:
		return "full"
	case unsafeSizeofS[C]() == 8:
		return "mixed"
	default:
		return "min"
	}
}

// addFlops accounts flops at the compute width plus extra at storage width.
func (s *Solver[S, C]) addFlops(compute, storage uint64) {
	var cv C
	if unsafeSizeof(cv) == 8 {
		s.counters.Flops64 += compute
	} else {
		s.counters.Flops32 += compute
	}
	var sv S
	if unsafeSizeof(sv) == 8 {
		s.counters.Flops64 += storage
	} else {
		s.counters.Flops32 += storage
	}
}

func (s *Solver[S, C]) addTranscendental(n uint64) {
	var cv C
	if unsafeSizeof(cv) == 8 {
		s.counters.Transcendental64 += n
	} else {
		s.counters.Transcendental32 += n
	}
}

// addConversions accounts S↔C conversions when the widths differ (the
// mixed-precision promotion traffic).
func (s *Solver[S, C]) addConversions(n uint64) {
	var sv S
	var cv C
	if unsafeSizeof(sv) != unsafeSizeof(cv) {
		s.counters.Conversions += n
	}
}

// adapt flags cells on relative height jumps (in parallel on the pool) and
// rebuilds state across the resulting remap. The flag buffer and the remap
// destinations are reused: each state array ping-pongs with its *Alt twin,
// so adaptations that do not grow the mesh move no memory through the heap.
func (s *Solver[S, C]) adapt() error {
	n := s.mesh.NumCells()
	s.flags = growSlice(s.flags, n)
	s.pool.ForN(s.cfg.Workers, n, s.parFlag)
	plan, err := s.mesh.Adapt(s.flags)
	if err != nil {
		return fmt.Errorf("clamr: adapt: %w", err)
	}
	s.h, s.hAlt = mesh.ApplyRemapInto(s.hAlt, plan, s.h, s.prolong, s.restrict), s.h
	s.hu, s.huAlt = mesh.ApplyRemapInto(s.huAlt, plan, s.hu, s.prolong, s.restrict), s.hu
	s.hv, s.hvAlt = mesh.ApplyRemapInto(s.hvAlt, plan, s.hv, s.prolong, s.restrict), s.hv
	return nil
}

// newCheckpointWriter starts a checkpoint with the mesh metadata arrays
// (always fixed-width int32) already staged.
func newCheckpointWriter[S, C precision.Real](w io.Writer, s *Solver[S, C]) *checkpoint.Writer {
	cw := checkpoint.NewWriter(w, "clamr", s.step, s.time)
	n := s.mesh.NumCells()
	is := make([]int32, n)
	js := make([]int32, n)
	ls := make([]int32, n)
	for i := 0; i < n; i++ {
		c := s.mesh.Cell(i)
		is[i], js[i], ls[i] = c.I, c.J, int32(c.Level)
	}
	cw.AddI32("cell_i", is)
	cw.AddI32("cell_j", js)
	cw.AddI32("cell_level", ls)
	return cw
}

// WriteFieldDump writes a compressed analysis dump: the height field
// rasterized to nx×ny and encoded with the fixed-rate zfp-style codec at
// `rate` bits per value — the storage-saving option the paper's cost
// section mentions via Lindstrom [34] but leaves unmodeled.
func (s *Solver[S, C]) WriteFieldDump(w io.Writer, nx, ny, rate int) (int64, error) {
	cw := checkpoint.NewWriter(w, "clamr-dump", s.step, s.time)
	field, err := s.mesh.Rasterize(s.HeightF64(), nx, ny)
	if err != nil {
		return 0, fmt.Errorf("clamr: dump: %w", err)
	}
	if err := cw.AddF64Compressed("height", field, nx, ny, rate); err != nil {
		return 0, fmt.Errorf("clamr: dump: %w", err)
	}
	n, err := cw.Flush()
	if err != nil {
		return n, err
	}
	s.counters.StoreBytes += uint64(n)
	return n, nil
}

// WriteCheckpoint serialises mesh and state; state arrays are written at
// the storage precision S, mesh metadata at fixed width — the size model
// behind the paper's Table III checkpoint comparison.
func (s *Solver[S, C]) WriteCheckpoint(w io.Writer) (int64, error) {
	cw := newCheckpointWriter(w, s)
	addState(cw, "h", s.h)
	addState(cw, "hu", s.hu)
	addState(cw, "hv", s.hv)
	nBytes, err := cw.Flush()
	if err != nil {
		return nBytes, err
	}
	s.counters.StoreBytes += uint64(nBytes)
	return nBytes, nil
}

// addState writes a state array at its native storage width.
func addState[S precision.Real](cw *checkpoint.Writer, name string, xs []S) {
	switch any(xs).(type) {
	case []float32:
		cw.AddF32(name, any(xs).([]float32))
	default:
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = float64(x)
		}
		cw.AddF64(name, out)
	}
}
