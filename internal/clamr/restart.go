package clamr

import (
	"fmt"
	"io"

	"repro/internal/checkpoint"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/precision"
)

// Load restores a Runner from a checkpoint written by WriteCheckpoint. The
// mesh is rebuilt from the stored (i, j, level) list and validated; state
// arrays load at the checkpoint's precision and convert to the requested
// mode's storage type. Loading a checkpoint into the mode that wrote it
// resumes bit-exactly (the timestep is recomputed from restored state).
func Load(mode precision.Mode, cfg Config, r io.Reader) (Runner, error) {
	ck, err := checkpoint.Read(r)
	if err != nil {
		return nil, fmt.Errorf("clamr: restart: %w", err)
	}
	if ck.Header.App != "clamr" {
		return nil, fmt.Errorf("clamr: restart: checkpoint is for app %q", ck.Header.App)
	}
	switch mode {
	case precision.Min:
		return loadSolver[float32, float32](cfg, ck)
	case precision.Mixed:
		return loadSolver[float32, float64](cfg, ck)
	case precision.Full:
		return loadSolver[float64, float64](cfg, ck)
	default:
		return nil, fmt.Errorf("clamr: restart: unsupported mode %v", mode)
	}
}

// loadSolver rebuilds a typed solver from checkpoint contents.
func loadSolver[S, C precision.Real](cfg Config, ck *checkpoint.Checkpoint) (*Solver[S, C], error) {
	cfg.setDefaults()
	is, err := ck.Int32Array("cell_i")
	if err != nil {
		return nil, fmt.Errorf("clamr: restart: %w", err)
	}
	js, err := ck.Int32Array("cell_j")
	if err != nil {
		return nil, fmt.Errorf("clamr: restart: %w", err)
	}
	ls, err := ck.Int32Array("cell_level")
	if err != nil {
		return nil, fmt.Errorf("clamr: restart: %w", err)
	}
	if len(is) != len(js) || len(is) != len(ls) {
		return nil, fmt.Errorf("clamr: restart: mesh arrays disagree (%d/%d/%d)", len(is), len(js), len(ls))
	}
	cells := make([]mesh.Cell, len(is))
	for k := range is {
		if ls[k] < 0 || int(ls[k]) > cfg.MaxLevel {
			return nil, fmt.Errorf("clamr: restart: cell %d level %d outside config MaxLevel %d", k, ls[k], cfg.MaxLevel)
		}
		cells[k] = mesh.Cell{I: is[k], J: js[k], Level: int8(ls[k])}
	}
	m, err := mesh.FromCells(cfg.NX, cfg.NY, cfg.MaxLevel, cfg.Bounds, cells)
	if err != nil {
		return nil, fmt.Errorf("clamr: restart: %w", err)
	}

	s := &Solver[S, C]{
		cfg:   cfg,
		mesh:  m,
		timer: metrics.NewTimer(),
		alloc: metrics.NewAllocTracker(),
	}
	s.initRuntime()
	load := func(name string) ([]S, error) {
		xs, err := ck.Float64Array(name)
		if err != nil {
			return nil, fmt.Errorf("clamr: restart: %w", err)
		}
		if len(xs) != len(cells) {
			return nil, fmt.Errorf("clamr: restart: array %q has %d entries for %d cells", name, len(xs), len(cells))
		}
		out := make([]S, len(xs))
		for i, v := range xs {
			out[i] = S(v)
		}
		return out, nil
	}
	if s.h, err = load("h"); err != nil {
		return nil, err
	}
	if s.hu, err = load("hu"); err != nil {
		return nil, err
	}
	if s.hv, err = load("hv"); err != nil {
		return nil, err
	}
	s.rebuildWorkspace()
	s.time = ck.Header.Time
	s.step = ck.Header.Step
	s.mass0 = s.Mass()
	return s, nil
}
