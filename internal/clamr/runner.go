package clamr

import (
	"fmt"
	"io"

	"repro/internal/fp16"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/precision"
)

// Runner is the precision-erased interface over Solver instantiations, so
// callers can select the paper's precision modes at run time (the analogue
// of CLAMR's compile options).
type Runner interface {
	// Step advances one timestep; Run advances n.
	Step() error
	Run(n int) error
	// Mesh, Time, StepCount expose simulation state.
	Mesh() *mesh.Mesh
	Time() float64
	StepCount() int
	// HeightF64 widens the height field; Mass and MassError audit
	// conservation with reproducible sums.
	HeightF64() []float64
	Mass() float64
	MassError() float64
	// CheckHealth runs the numerical sentinels (finite state, bounded mass
	// drift); a failure wraps precision.ErrNumericalFailure.
	CheckHealth() error
	// Counters, Timer and StateBytes expose instrumentation.
	Counters() metrics.Counters
	Timer() *metrics.Timer
	StateBytes() uint64
	// WriteCheckpoint serialises the run at storage precision;
	// WriteFieldDump writes a lossy compressed analysis field.
	WriteCheckpoint(w io.Writer) (int64, error)
	WriteFieldDump(w io.Writer, nx, ny, rate int) (int64, error)
}

// New constructs a Runner for the given precision mode:
//
//	Half  — float32 compute with binary16 state demotion each step
//	Min   — float32 storage, float32 compute
//	Mixed — float32 storage, float64 compute
//	Full  — float64 storage, float64 compute
func New(mode precision.Mode, cfg Config, ic InitialCondition) (Runner, error) {
	switch mode {
	case precision.Half:
		inner, err := NewSolver[float32, float32](cfg, ic)
		if err != nil {
			return nil, err
		}
		inner.stepDur = obs.StepDuration("clamr", "half")
		h := &halfRunner{Solver: inner}
		h.demote()
		return h, nil
	case precision.Min:
		return NewSolver[float32, float32](cfg, ic)
	case precision.Mixed:
		return NewSolver[float32, float64](cfg, ic)
	case precision.Full:
		return NewSolver[float64, float64](cfg, ic)
	default:
		return nil, fmt.Errorf("clamr: unknown precision mode %v", mode)
	}
}

// halfRunner stores state in software binary16: it runs the float32 solver
// and rounds the state arrays through fp16 after every step, modelling
// half-precision state arrays with single-precision local computation (the
// (f16, f32) point in the precision ablation).
type halfRunner struct {
	*Solver[float32, float32]
}

// demote rounds all state arrays through binary16.
func (h *halfRunner) demote() {
	s := h.Solver
	for i := range s.h {
		s.h[i] = fp16.FromFloat32(s.h[i]).Float32()
		s.hu[i] = fp16.FromFloat32(s.hu[i]).Float32()
		s.hv[i] = fp16.FromFloat32(s.hv[i]).Float32()
	}
	s.counters.Conversions += uint64(6 * len(s.h))
}

// Step advances the inner solver and re-demotes storage.
func (h *halfRunner) Step() error {
	if err := h.Solver.Step(); err != nil {
		return err
	}
	h.demote()
	return nil
}

// Run advances n steps with per-step demotion.
func (h *halfRunner) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := h.Step(); err != nil {
			return err
		}
	}
	return nil
}

// CheckHealth loosens the mass-drift tolerance to binary16's quantization
// scale: per-step fp16 demotion walks total mass by ~2⁻¹¹ relative per
// step, so the float32 threshold would flag healthy half-precision runs.
func (h *halfRunner) CheckHealth() error {
	return h.Solver.checkHealthTol(5e-2)
}

// StateBytes reports the binary16 footprint of the state arrays (half the
// float32 working copies the adapter carries).
func (h *halfRunner) StateBytes() uint64 {
	s := h.Solver
	inner := s.StateBytes()
	// Replace the 3 float32 state arrays (4 bytes/elem) with f16 (2).
	return inner - uint64(len(s.h))*3*2
}

// WriteCheckpoint writes the state arrays as binary16 payloads.
func (h *halfRunner) WriteCheckpoint(w io.Writer) (int64, error) {
	s := h.Solver
	cw := newCheckpointWriter(w, s)
	cw.AddF16("h", fp16.FromSlice32(s.h))
	cw.AddF16("hu", fp16.FromSlice32(s.hu))
	cw.AddF16("hv", fp16.FromSlice32(s.hv))
	n, err := cw.Flush()
	if err != nil {
		return n, err
	}
	s.counters.StoreBytes += uint64(n)
	return n, nil
}
