package clamr

import (
	"testing"

	"repro/internal/precision"
)

// TestParallelBitwiseIdentical verifies the claim the Workers option makes:
// parallel sweeps produce bit-identical state to the serial ones at every
// worker count, for both kernels and all precision modes.
func TestParallelBitwiseIdentical(t *testing.T) {
	for _, kernel := range []Kernel{KernelCell, KernelFace} {
		for _, mode := range []precision.Mode{precision.Min, precision.Full} {
			run := func(workers int) []float64 {
				cfg := Config{
					NX: 32, NY: 32, MaxLevel: 1, Kernel: kernel,
					AMRInterval: 10, Workers: workers,
				}
				r, err := New(mode, cfg, testIC(cfg))
				if err != nil {
					t.Fatal(err)
				}
				if err := r.Run(30); err != nil {
					t.Fatal(err)
				}
				return r.HeightF64()
			}
			ref := run(1)
			for _, workers := range []int{2, 3, 8} {
				got := run(workers)
				if len(got) != len(ref) {
					t.Fatalf("%v/%v workers=%d: cell counts diverged", kernel, mode, workers)
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("%v/%v workers=%d: cell %d differs: %x vs %x",
							kernel, mode, workers, i, got[i], ref[i])
					}
				}
			}
		}
	}
}

func BenchmarkParallelScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4", 8: "w8"}[workers], func(b *testing.B) {
			cfg := Config{NX: 128, NY: 128, MaxLevel: 0, Kernel: KernelFace, AMRInterval: 0, Workers: workers}
			r, err := New(precision.Full, cfg, testIC(cfg))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
