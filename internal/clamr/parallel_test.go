package clamr

import (
	"bytes"
	"crypto/sha256"
	"runtime"
	"testing"

	"repro/internal/precision"
)

// TestParallelBitwiseIdentical verifies the claim the Workers option makes:
// parallel sweeps produce bit-identical state to the serial ones at every
// worker count, for both kernels and all precision modes.
func TestParallelBitwiseIdentical(t *testing.T) {
	for _, kernel := range []Kernel{KernelCell, KernelFace} {
		for _, mode := range []precision.Mode{precision.Min, precision.Full} {
			run := func(workers int) []float64 {
				cfg := Config{
					NX: 32, NY: 32, MaxLevel: 1, Kernel: kernel,
					AMRInterval: 10, Workers: workers,
				}
				r, err := New(mode, cfg, testIC(cfg))
				if err != nil {
					t.Fatal(err)
				}
				if err := r.Run(30); err != nil {
					t.Fatal(err)
				}
				return r.HeightF64()
			}
			ref := run(1)
			for _, workers := range []int{2, 3, 8} {
				got := run(workers)
				if len(got) != len(ref) {
					t.Fatalf("%v/%v workers=%d: cell counts diverged", kernel, mode, workers)
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("%v/%v workers=%d: cell %d differs: %x vs %x",
							kernel, mode, workers, i, got[i], ref[i])
					}
				}
			}
		}
	}
}

// stateHash runs a short simulation and returns a digest of the full
// serialised state (mesh + h, hu, hv at storage precision), so any
// single-bit divergence between worker counts is caught.
func stateHash(t *testing.T, kernel Kernel, mode precision.Mode, workers int) [sha256.Size]byte {
	t.Helper()
	cfg := Config{
		NX: 32, NY: 32, MaxLevel: 1, Kernel: kernel,
		AMRInterval: 10, Workers: workers,
	}
	r, err := New(mode, cfg, testIC(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(30); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := r.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	return sha256.Sum256(buf.Bytes())
}

// TestParallelStateHashIdentical is the regression form of the determinism
// contract: the sha256 of the complete serialised state must be
// byte-identical at every worker count, including counts above the pool
// size and above GOMAXPROCS.
func TestParallelStateHashIdentical(t *testing.T) {
	workerCounts := []int{1, 2, 3, 7, runtime.GOMAXPROCS(0)}
	for _, kernel := range []Kernel{KernelCell, KernelFace} {
		for _, mode := range []precision.Mode{precision.Min, precision.Full} {
			ref := stateHash(t, kernel, mode, workerCounts[0])
			for _, workers := range workerCounts[1:] {
				if got := stateHash(t, kernel, mode, workers); got != ref {
					t.Errorf("%v/%v: workers=%d state hash %x, workers=1 %x",
						kernel, mode, workers, got, ref)
				}
			}
		}
	}
}

// TestCLAMRStepZeroAlloc asserts the tentpole property: after warm-up the
// step loop allocates nothing, on both kernels, serial and pooled.
func TestCLAMRStepZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name    string
		kernel  Kernel
		workers int
	}{
		{"face/serial", KernelFace, 1},
		{"face/pooled", KernelFace, 4},
		{"cell/serial", KernelCell, 1},
		{"cell/pooled", KernelCell, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				NX: 32, NY: 32, MaxLevel: 1, Kernel: tc.kernel,
				AMRInterval: 0, Workers: tc.workers,
			}
			s, err := NewSolver[float64, float64](cfg, testIC(cfg))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Run(3); err != nil { // warm pool, staging, timer cells
				t.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(20, func() {
				if err := s.Step(); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("steady-state Step allocated %v objects per call", allocs)
			}
		})
	}
}

// BenchmarkCLAMRStep measures the steady-state step (no AMR) for both
// kernels, serial and pooled; allocs/op is the zero-allocation acceptance
// number.
func BenchmarkCLAMRStep(b *testing.B) {
	for _, bc := range []struct {
		name    string
		kernel  Kernel
		workers int
	}{
		{"face/w1", KernelFace, 1},
		{"face/w4", KernelFace, 4},
		{"cell/w1", KernelCell, 1},
		{"cell/w4", KernelCell, 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := Config{NX: 128, NY: 128, MaxLevel: 0, Kernel: bc.kernel, AMRInterval: 0, Workers: bc.workers}
			s, err := NewSolver[float64, float64](cfg, testIC(cfg))
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Run(2); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelScaling(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(map[int]string{1: "w1", 2: "w2", 4: "w4", 8: "w8"}[workers], func(b *testing.B) {
			cfg := Config{NX: 128, NY: 128, MaxLevel: 0, Kernel: KernelFace, AMRInterval: 0, Workers: workers}
			r, err := New(precision.Full, cfg, testIC(cfg))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
