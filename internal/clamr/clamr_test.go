package clamr

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/mesh"
	"repro/internal/precision"
)

func testConfig(kernel Kernel, maxLevel int) Config {
	return Config{
		NX: 32, NY: 32,
		MaxLevel:    maxLevel,
		Kernel:      kernel,
		AMRInterval: 10,
	}
}

func testIC(cfg Config) InitialCondition {
	b := cfg.Bounds
	if b == (mesh.Bounds{}) {
		b = mesh.UnitBounds
	}
	return DamBreak(b, 10, 2, 0.15, 0.05)
}

func TestDamBreakIC(t *testing.T) {
	ic := DamBreak(mesh.UnitBounds, 10, 2, 0.2, 0.02)
	h, u, v := ic(0.5, 0.5)
	if math.Abs(h-10) > 1e-6 || u != 0 || v != 0 {
		t.Errorf("center: h=%g u=%g v=%g", h, u, v)
	}
	h, _, _ = ic(0.95, 0.95)
	if math.Abs(h-2) > 1e-6 {
		t.Errorf("far field: h=%g", h)
	}
	// Radial symmetry (dyadic offsets so the distances are bit-identical).
	wide := DamBreak(mesh.UnitBounds, 10, 2, 0.2, 0.1)
	h1, _, _ := wide(0.5+0.1875, 0.5)
	h2, _, _ := wide(0.5, 0.5-0.1875)
	if h1 != h2 {
		t.Errorf("IC not radially symmetric: %g vs %g", h1, h2)
	}
	// Sharp variant.
	sharp := DamBreak(mesh.UnitBounds, 10, 2, 0.2, 0)
	if h, _, _ := sharp(0.5, 0.5); h != 10 {
		t.Errorf("sharp inside: %g", h)
	}
	if h, _, _ := sharp(0.9, 0.9); h != 2 {
		t.Errorf("sharp outside: %g", h)
	}
}

func TestRunStableAllModes(t *testing.T) {
	for _, mode := range precision.AllModes {
		cfg := testConfig(KernelFace, 1)
		r, err := New(mode, cfg, testIC(cfg))
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := r.Run(50); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		hs := r.HeightF64()
		for i, h := range hs {
			if math.IsNaN(h) || math.IsInf(h, 0) {
				t.Fatalf("%v: cell %d height %g", mode, i, h)
			}
			if h <= 0 || h > 20 {
				t.Fatalf("%v: cell %d height %g out of physical range", mode, i, h)
			}
		}
		if r.StepCount() != 50 {
			t.Errorf("%v: StepCount = %d", mode, r.StepCount())
		}
		if r.Time() <= 0 {
			t.Errorf("%v: Time = %g", mode, r.Time())
		}
	}
}

func TestMassConservation(t *testing.T) {
	for _, kernel := range []Kernel{KernelCell, KernelFace} {
		cfg := testConfig(kernel, 1)
		s, err := NewSolver[float64, float64](cfg, testIC(cfg))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(100); err != nil {
			t.Fatal(err)
		}
		if drift := s.MassError(); drift > 1e-11 {
			t.Errorf("%v kernel: mass drift %g after 100 steps (with AMR)", kernel, drift)
		}
	}
	// Single precision drifts more but must stay small.
	cfg := testConfig(KernelFace, 1)
	s32, err := NewSolver[float32, float32](cfg, testIC(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := s32.Run(100); err != nil {
		t.Fatal(err)
	}
	if drift := s32.MassError(); drift > 1e-4 {
		t.Errorf("float32 mass drift %g", drift)
	}
}

func TestKernelsAgree(t *testing.T) {
	cfg := testConfig(KernelCell, 0)
	cfg.AMRInterval = 0
	sCell, err := NewSolver[float64, float64](cfg, testIC(cfg))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Kernel = KernelFace
	sFace, err := NewSolver[float64, float64](cfg, testIC(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := sCell.Run(50); err != nil {
		t.Fatal(err)
	}
	if err := sFace.Run(50); err != nil {
		t.Fatal(err)
	}
	hc, hf := sCell.HeightF64(), sFace.HeightF64()
	if len(hc) != len(hf) {
		t.Fatalf("cell counts diverged: %d vs %d", len(hc), len(hf))
	}
	maxRel := 0.0
	for i := range hc {
		rel := math.Abs(hc[i]-hf[i]) / math.Abs(hc[i])
		if rel > maxRel {
			maxRel = rel
		}
	}
	// The kernels differ only in accumulation order: agreement must be
	// near machine precision.
	if maxRel > 1e-11 {
		t.Errorf("kernels disagree: max rel %g", maxRel)
	}
	if maxRel == 0 {
		t.Log("kernels bitwise identical (unexpected but fine)")
	}
}

func TestMixedTracksFullClosely(t *testing.T) {
	run := func(mode precision.Mode) []float64 {
		cfg := testConfig(KernelFace, 1)
		r, err := New(mode, cfg, testIC(cfg))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Run(100); err != nil {
			t.Fatal(err)
		}
		img, err := r.Mesh().Rasterize(r.HeightF64(), 64, 64)
		if err != nil {
			t.Fatal(err)
		}
		return img
	}
	full := run(precision.Full)
	mixed := run(precision.Mixed)
	min := run(precision.Min)
	maxDiff := func(a, b []float64) float64 {
		d := 0.0
		for i := range a {
			if v := math.Abs(a[i] - b[i]); v > d {
				d = v
			}
		}
		return d
	}
	dMixed := maxDiff(full, mixed)
	dMin := maxDiff(full, min)
	// Paper Fig 1: differences are ≥5 orders of magnitude below the ~10
	// solution scale, and mixed is closest to full.
	if dMixed > 1e-3 {
		t.Errorf("|full-mixed| = %g, too large", dMixed)
	}
	if dMin > 1e-2 {
		t.Errorf("|full-min| = %g, too large", dMin)
	}
	// In this solver the deviation from full is dominated by the per-step
	// float32 *storage* rounding, which Min and Mixed share — so unlike
	// the paper's CLAMR (whose long in-step double chains favour Mixed
	// distinctly), Mixed and Min land within a small factor of each other.
	// Assert that, rather than strict ordering.
	if dMixed > 2*dMin {
		t.Errorf("mixed (%g) deviates far more than min (%g) from full", dMixed, dMin)
	}
	if dMin == 0 {
		t.Error("min precision identical to full — precision plumbing broken")
	}
}

func TestSymmetryPreserved(t *testing.T) {
	// The centered dam break must stay x-mirror symmetric; double
	// precision should be symmetric to ~1e-12, single to ~1e-5 relative.
	check := func(mode precision.Mode, tol float64) {
		cfg := testConfig(KernelCell, 0)
		cfg.AMRInterval = 0
		r, err := New(mode, cfg, testIC(cfg))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Run(60); err != nil {
			t.Fatal(err)
		}
		img, err := r.Mesh().Rasterize(r.HeightF64(), 64, 64)
		if err != nil {
			t.Fatal(err)
		}
		maxAsym := 0.0
		for j := 0; j < 64; j++ {
			for i := 0; i < 32; i++ {
				a := img[j*64+i]
				b := img[j*64+63-i]
				if d := math.Abs(a - b); d > maxAsym {
					maxAsym = d
				}
			}
		}
		if maxAsym > tol {
			t.Errorf("%v: asymmetry %g exceeds %g", mode, maxAsym, tol)
		}
	}
	check(precision.Full, 1e-10)
	check(precision.Min, 1e-3)
}

func TestAMRRefinesAroundFront(t *testing.T) {
	cfg := testConfig(KernelFace, 2)
	cfg.AMRInterval = 5
	s, err := NewSolver[float64, float64](cfg, testIC(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if s.Mesh().MaxActiveLevel() < 1 {
		t.Error("initial adaptation did not refine the dam wall")
	}
	cellsBefore := s.Mesh().NumCells()
	if err := s.Run(40); err != nil {
		t.Fatal(err)
	}
	if err := s.Mesh().Validate(); err != nil {
		t.Fatalf("mesh invalid after AMR run: %v", err)
	}
	if s.Mesh().NumCells() == cellsBefore {
		t.Log("cell count unchanged (possible but unusual)")
	}
	if drift := s.MassError(); drift > 1e-11 {
		t.Errorf("AMR mass drift %g", drift)
	}
}

func TestCheckpointSizeRatio(t *testing.T) {
	var bufMin, bufFull bytes.Buffer
	cfg := testConfig(KernelFace, 1)
	rMin, err := New(precision.Min, cfg, testIC(cfg))
	if err != nil {
		t.Fatal(err)
	}
	rFull, err := New(precision.Full, cfg, testIC(cfg))
	if err != nil {
		t.Fatal(err)
	}
	nMin, err := rMin.WriteCheckpoint(&bufMin)
	if err != nil {
		t.Fatal(err)
	}
	nFull, err := rFull.WriteCheckpoint(&bufFull)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(nMin) / float64(nFull)
	// Paper Table III: 86M/128M ≈ 0.67. Ours: (3×4+12)/(3×8+12) = 24/36 ≈ 0.67.
	if ratio < 0.6 || ratio > 0.75 {
		t.Errorf("min/full checkpoint ratio %.3f, want ≈2/3", ratio)
	}
}

func TestCountersAndMemoryScaleWithPrecision(t *testing.T) {
	cfg := testConfig(KernelFace, 0)
	cfg.AMRInterval = 0
	rMin, _ := New(precision.Min, cfg, testIC(cfg))
	rMixed, _ := New(precision.Mixed, cfg, testIC(cfg))
	rFull, _ := New(precision.Full, cfg, testIC(cfg))
	for _, r := range []Runner{rMin, rMixed, rFull} {
		if err := r.Run(5); err != nil {
			t.Fatal(err)
		}
	}
	// Memory: min == mixed < full.
	if rMin.StateBytes() != rMixed.StateBytes() {
		// Mixed carries float64 RHS scratch, so allow it to be larger,
		// but the *state* contribution is equal; total must still be
		// below full.
		if rMixed.StateBytes() >= rFull.StateBytes() {
			t.Errorf("mixed memory %d not below full %d", rMixed.StateBytes(), rFull.StateBytes())
		}
	}
	if rMin.StateBytes() >= rFull.StateBytes() {
		t.Errorf("min memory %d not below full %d", rMin.StateBytes(), rFull.StateBytes())
	}
	// Flop widths: min counts f32, full counts f64, mixed counts f64
	// compute with conversions.
	if rMin.Counters().Flops32 == 0 || rMin.Counters().Flops64 != 0 {
		t.Errorf("min counters wrong: %+v", rMin.Counters())
	}
	if rFull.Counters().Flops64 == 0 || rFull.Counters().Flops32 != 0 {
		t.Errorf("full counters wrong: %+v", rFull.Counters())
	}
	mc := rMixed.Counters()
	if mc.Flops64 == 0 || mc.Conversions == 0 {
		t.Errorf("mixed counters wrong: %+v", mc)
	}
	if rMin.Counters().Conversions != 0 {
		t.Errorf("min recorded conversions: %d", rMin.Counters().Conversions)
	}
	// Traffic: min moves about half the bytes of full.
	minBytes := rMin.Counters().TotalBytes()
	fullBytes := rFull.Counters().TotalBytes()
	ratio := float64(minBytes) / float64(fullBytes)
	if ratio < 0.4 || ratio > 0.7 {
		t.Errorf("min/full traffic ratio %.2f", ratio)
	}
}

func TestHalfModeDegradesGracefully(t *testing.T) {
	cfg := testConfig(KernelFace, 0)
	cfg.AMRInterval = 0
	rHalf, err := New(precision.Half, cfg, testIC(cfg))
	if err != nil {
		t.Fatal(err)
	}
	rFull, err := New(precision.Full, cfg, testIC(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := rHalf.Run(30); err != nil {
		t.Fatal(err)
	}
	if err := rFull.Run(30); err != nil {
		t.Fatal(err)
	}
	hH, hF := rHalf.HeightF64(), rFull.HeightF64()
	maxDiff := 0.0
	for i := range hH {
		if math.IsNaN(hH[i]) {
			t.Fatalf("half mode produced NaN at cell %d", i)
		}
		if d := math.Abs(hH[i] - hF[i]); d > maxDiff {
			maxDiff = d
		}
	}
	// Half precision is visibly worse than full but still bounded.
	if maxDiff > 0.5 {
		t.Errorf("half deviation %g too large", maxDiff)
	}
	if maxDiff < 1e-5 {
		t.Errorf("half deviation %g suspiciously small — demotion not happening?", maxDiff)
	}
	if rHalf.StateBytes() >= rFull.StateBytes() {
		t.Error("half mode memory not below full")
	}
}

func TestRunnerErrorsOnBadConfig(t *testing.T) {
	cfg := Config{NX: 0, NY: 4}
	if _, err := New(precision.Full, cfg, testIC(Config{})); err == nil {
		t.Error("accepted zero-width grid")
	}
	if _, err := New(precision.Mode(42), testConfig(KernelCell, 0), testIC(Config{})); err == nil {
		t.Error("accepted unknown mode")
	}
}

func TestTimerBucketsPopulated(t *testing.T) {
	cfg := testConfig(KernelFace, 1)
	s, err := NewSolver[float64, float64](cfg, testIC(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(12); err != nil {
		t.Fatal(err)
	}
	if s.Timer().Total("finite_diff") <= 0 {
		t.Error("finite_diff phase not timed")
	}
	if s.Timer().Total("timestep") <= 0 {
		t.Error("timestep phase not timed")
	}
	if s.Timer().Total("amr") <= 0 {
		t.Error("amr phase not timed despite AMRInterval=10")
	}
}

func TestKernelString(t *testing.T) {
	if KernelCell.String() != "unvectorized" || KernelFace.String() != "vectorized" {
		t.Error("kernel names wrong")
	}
}

func TestVelocityF64(t *testing.T) {
	cfg := testConfig(KernelFace, 0)
	cfg.AMRInterval = 0
	s, err := NewSolver[float64, float64](cfg, testIC(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	u, v := s.VelocityF64()
	anyMotion := false
	for i := range u {
		if math.IsNaN(u[i]) || math.IsNaN(v[i]) {
			t.Fatalf("velocity NaN at %d", i)
		}
		if u[i] != 0 || v[i] != 0 {
			anyMotion = true
		}
	}
	if !anyMotion {
		t.Error("dam break produced no motion")
	}
}

func BenchmarkFiniteDiff(b *testing.B) {
	for _, kernel := range []Kernel{KernelCell, KernelFace} {
		for _, mode := range precision.Modes {
			cfg := Config{NX: 64, NY: 64, MaxLevel: 1, Kernel: kernel, AMRInterval: 0}
			r, err := New(mode, cfg, DamBreak(mesh.UnitBounds, 10, 2, 0.15, 0.05))
			if err != nil {
				b.Fatal(err)
			}
			b.Run(kernel.String()+"/"+mode.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := r.Step(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func TestBlowUpDetected(t *testing.T) {
	// A Courant number far above the stability limit must blow up and be
	// reported as an error rather than silently producing NaNs.
	cfg := testConfig(KernelFace, 0)
	cfg.AMRInterval = 0
	cfg.Courant = 25
	r, err := New(precision.Full, cfg, testIC(cfg))
	if err != nil {
		t.Fatal(err)
	}
	err = r.Run(200)
	if err == nil {
		t.Fatal("unstable run completed without error")
	}
}
