package clamr

import (
	"math"

	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/precision"
)

// faceList is the SoA connectivity the face-centric kernel sweeps over.
// Each interior face appears exactly once, emitted by its finer (or
// left/bottom, at equal level) cell, so the face length is the emitter's
// transverse cell size. Boundary faces are kept separately.
type faceList[C precision.Real] struct {
	// Interior x-faces: xl is the cell on the -x side, xr on the +x side.
	xl, xr []int32
	xlen   []C
	// Interior y-faces: yb on the -y side, yt on the +y side.
	yb, yt []int32
	ylen   []C
	// Boundary faces (reflective walls).
	bCell []int32
	bSide []mesh.Side
	bLen  []C
	// Per-cell inverse area at compute precision.
	invArea []C
	// Per-face flux staging for the parallel two-phase sweep (lazily
	// allocated): fluxes are computed in parallel, then scattered in the
	// fixed serial face order, so the parallel kernel is bit-identical to
	// the serial one.
	fxh, fxhu, fxhv []C
	fyh, fyhu, fyhv []C
}

// ensureFluxStaging sizes the per-face flux arrays, reusing their backing
// arrays whenever capacity suffices (grow-only, like the rest of the
// workspace).
func (fl *faceList[C]) ensureFluxStaging() {
	fl.fxh = growSlice(fl.fxh, len(fl.xl))
	fl.fxhu = growSlice(fl.fxhu, len(fl.xl))
	fl.fxhv = growSlice(fl.fxhv, len(fl.xl))
	fl.fyh = growSlice(fl.fyh, len(fl.yb))
	fl.fyhu = growSlice(fl.fyhu, len(fl.yb))
	fl.fyhv = growSlice(fl.fyhv, len(fl.yb))
}

// rebuild re-enumerates every face of the mesh exactly once, appending into
// the list's existing backing arrays (resliced to zero length first), so a
// rebuild after an adaptation that did not grow the mesh allocates nothing.
//
// Emission rule per cell i and neighbor n: Right/Top sides emit when
// level(i) ≥ level(n); Left/Bottom sides emit when level(i) > level(n).
// Same-level faces are emitted by the left/bottom cell; coarse–fine faces
// by the fine cell. Sides with no neighbor are domain boundary.
func (fl *faceList[C]) rebuild(m *mesh.Mesh) {
	n := m.NumCells()
	fl.invArea = growSlice(fl.invArea, n)
	fl.xl, fl.xr, fl.xlen = fl.xl[:0], fl.xr[:0], fl.xlen[:0]
	fl.yb, fl.yt, fl.ylen = fl.yb[:0], fl.yt[:0], fl.ylen[:0]
	fl.bCell, fl.bSide, fl.bLen = fl.bCell[:0], fl.bSide[:0], fl.bLen[:0]
	for i := 0; i < n; i++ {
		fl.invArea[i] = C(1 / m.Area(i))
		c := m.Cell(i)
		dx, dy := m.CellSize(c.Level)
		nb := m.Neighbors(i)
		for side := mesh.Left; side <= mesh.Top; side++ {
			neighbors := nb.On(side)
			if len(neighbors) == 0 {
				fl.bCell = append(fl.bCell, int32(i))
				fl.bSide = append(fl.bSide, side)
				if side == mesh.Left || side == mesh.Right {
					fl.bLen = append(fl.bLen, C(dy))
				} else {
					fl.bLen = append(fl.bLen, C(dx))
				}
				continue
			}
			for _, nIdx := range neighbors {
				nLevel := m.Cell(int(nIdx)).Level
				switch side {
				case mesh.Right:
					if c.Level >= nLevel {
						fl.xl = append(fl.xl, int32(i))
						fl.xr = append(fl.xr, nIdx)
						fl.xlen = append(fl.xlen, C(dy))
					}
				case mesh.Left:
					if c.Level > nLevel {
						fl.xl = append(fl.xl, nIdx)
						fl.xr = append(fl.xr, int32(i))
						fl.xlen = append(fl.xlen, C(dy))
					}
				case mesh.Top:
					if c.Level >= nLevel {
						fl.yb = append(fl.yb, int32(i))
						fl.yt = append(fl.yt, nIdx)
						fl.ylen = append(fl.ylen, C(dx))
					}
				case mesh.Bottom:
					if c.Level > nLevel {
						fl.yb = append(fl.yb, nIdx)
						fl.yt = append(fl.yt, int32(i))
						fl.ylen = append(fl.ylen, C(dx))
					}
				}
			}
		}
	}
	fl.ensureFluxStaging()
}

// rusanovX computes the x-direction Rusanov numerical flux between left and
// right conserved states at compute precision. dry floors the velocity
// divisions: a subnormal-but-positive height cannot blow up hu/h, while any
// wet cell (h ≥ dry) divides by its exact height, so results on wet states
// are bit-identical to an unguarded kernel. Pressure terms always use the
// true height. dry = 0 disables the guard.
func rusanovX[C precision.Real](g, dry, hL, huL, hvL, hR, huR, hvR C) (fh, fhu, fhv C) {
	dL, dR := hL, hR
	if dL < dry {
		dL = dry
	}
	if dR < dry {
		dR = dry
	}
	uL := huL / dL
	vL := hvL / dL
	uR := huR / dR
	vR := hvR / dR
	cL := C(math.Sqrt(float64(g * hL)))
	cR := C(math.Sqrt(float64(g * hR)))
	s := absC(uL) + cL
	if sr := absC(uR) + cR; sr > s {
		s = sr
	}
	half := C(0.5)
	pL := half * g * hL * hL
	pR := half * g * hR * hR
	fh = half*(huL+huR) - half*s*(hR-hL)
	fhu = half*(huL*uL+pL+huR*uR+pR) - half*s*(huR-huL)
	fhv = half*(huL*vL+huR*vR) - half*s*(hvR-hvL)
	return fh, fhu, fhv
}

// rusanovY is the y-direction counterpart of rusanovX (same dry floor).
func rusanovY[C precision.Real](g, dry, hB, huB, hvB, hT, huT, hvT C) (fh, fhu, fhv C) {
	dB, dT := hB, hT
	if dB < dry {
		dB = dry
	}
	if dT < dry {
		dT = dry
	}
	uB := huB / dB
	vB := hvB / dB
	uT := huT / dT
	vT := hvT / dT
	cB := C(math.Sqrt(float64(g * hB)))
	cT := C(math.Sqrt(float64(g * hT)))
	s := absC(vB) + cB
	if st := absC(vT) + cT; st > s {
		s = st
	}
	half := C(0.5)
	pB := half * g * hB * hB
	pT := half * g * hT * hT
	fh = half*(hvB+hvT) - half*s*(hT-hB)
	fhu = half*(hvB*uB+hvT*uT) - half*s*(huT-huB)
	fhv = half*(hvB*vB+pB+hvT*vT+pT) - half*s*(hvT-hvB)
	return fh, fhu, fhv
}

// wallFluxX is the reflective-wall x-flux for a cell state: only the
// momentum (pressure + dissipation) component is nonzero, so walls conserve
// mass exactly. n is the outward normal (+1 right wall, -1 left wall); the
// Rusanov dissipation term flips sign with it because the mirrored ghost
// sits on opposite sides.
func wallFluxX[C precision.Real](g, dry, h, hu, n C) (fhu C) {
	d := h
	if d < dry {
		d = dry
	}
	u := hu / d
	c := C(math.Sqrt(float64(g * h)))
	s := absC(u) + c
	return hu*u + C(0.5)*g*h*h + n*s*hu
}

// wallFluxY is the reflective-wall y-flux; n is the outward normal
// (+1 top wall, -1 bottom wall).
func wallFluxY[C precision.Real](g, dry, h, hv, n C) (fhv C) {
	d := h
	if d < dry {
		d = dry
	}
	v := hv / d
	c := C(math.Sqrt(float64(g * h)))
	s := absC(v) + c
	return hv*v + C(0.5)*g*h*h + n*s*hv
}

// Analytic per-sweep operation counts for the instrumentation (see package
// metrics): flop tallies of the flux/update expressions above.
const (
	flopsPerInteriorFlux = 30 // divides, abs/max, blending — sqrt counted separately
	flopsPerWallFlux     = 8
	flopsPerCellUpdate   = 9
	sqrtPerInteriorFlux  = 2
	sqrtPerWallFlux      = 1
)

// finiteDiffFace is the "vectorized" finite-difference sweep: face-centric,
// SoA gathers, one flux evaluation per face, unrolled by 4. This is the
// profile the paper obtains by adding SIMD pragmas to CLAMR's finite_diff
// loop.
func (s *Solver[S, C]) finiteDiffFace(dt C) {
	if s.cfg.Workers > 1 {
		s.finiteDiffFaceParallel(dt)
		return
	}
	g := C(s.cfg.Gravity)
	dry := s.dry
	fl := &s.faces
	n := s.mesh.NumCells()
	for i := 0; i < n; i++ {
		s.dh[i], s.dhu[i], s.dhv[i] = 0, 0, 0
	}

	// Interior x-faces, unrolled by 4 with bounds hints.
	xi := 0
	for ; xi+4 <= len(fl.xl); xi += 4 {
		for k := xi; k < xi+4; k++ {
			l, r := fl.xl[k], fl.xr[k]
			fh, fhu, fhv := rusanovX(g, dry, C(s.h[l]), C(s.hu[l]), C(s.hv[l]), C(s.h[r]), C(s.hu[r]), C(s.hv[r]))
			w := fl.xlen[k]
			s.dh[l] -= S(fh * w)
			s.dhu[l] -= S(fhu * w)
			s.dhv[l] -= S(fhv * w)
			s.dh[r] += S(fh * w)
			s.dhu[r] += S(fhu * w)
			s.dhv[r] += S(fhv * w)
		}
	}
	for ; xi < len(fl.xl); xi++ {
		l, r := fl.xl[xi], fl.xr[xi]
		fh, fhu, fhv := rusanovX(g, dry, C(s.h[l]), C(s.hu[l]), C(s.hv[l]), C(s.h[r]), C(s.hu[r]), C(s.hv[r]))
		w := fl.xlen[xi]
		s.dh[l] -= S(fh * w)
		s.dhu[l] -= S(fhu * w)
		s.dhv[l] -= S(fhv * w)
		s.dh[r] += S(fh * w)
		s.dhu[r] += S(fhu * w)
		s.dhv[r] += S(fhv * w)
	}

	// Interior y-faces.
	yi := 0
	for ; yi+4 <= len(fl.yb); yi += 4 {
		for k := yi; k < yi+4; k++ {
			b, tp := fl.yb[k], fl.yt[k]
			fh, fhu, fhv := rusanovY(g, dry, C(s.h[b]), C(s.hu[b]), C(s.hv[b]), C(s.h[tp]), C(s.hu[tp]), C(s.hv[tp]))
			w := fl.ylen[k]
			s.dh[b] -= S(fh * w)
			s.dhu[b] -= S(fhu * w)
			s.dhv[b] -= S(fhv * w)
			s.dh[tp] += S(fh * w)
			s.dhu[tp] += S(fhu * w)
			s.dhv[tp] += S(fhv * w)
		}
	}
	for ; yi < len(fl.yb); yi++ {
		b, tp := fl.yb[yi], fl.yt[yi]
		fh, fhu, fhv := rusanovY(g, dry, C(s.h[b]), C(s.hu[b]), C(s.hv[b]), C(s.h[tp]), C(s.hu[tp]), C(s.hv[tp]))
		w := fl.ylen[yi]
		s.dh[b] -= S(fh * w)
		s.dhu[b] -= S(fhu * w)
		s.dhv[b] -= S(fhv * w)
		s.dh[tp] += S(fh * w)
		s.dhu[tp] += S(fhu * w)
		s.dhv[tp] += S(fhv * w)
	}

	// Boundary faces.
	for k := range fl.bCell {
		i := fl.bCell[k]
		w := fl.bLen[k]
		switch fl.bSide[k] {
		case mesh.Left:
			s.dhu[i] += S(wallFluxX(g, dry, C(s.h[i]), C(s.hu[i]), -1) * w)
		case mesh.Right:
			s.dhu[i] -= S(wallFluxX(g, dry, C(s.h[i]), C(s.hu[i]), 1) * w)
		case mesh.Bottom:
			s.dhv[i] += S(wallFluxY(g, dry, C(s.h[i]), C(s.hv[i]), -1) * w)
		case mesh.Top:
			s.dhv[i] -= S(wallFluxY(g, dry, C(s.h[i]), C(s.hv[i]), 1) * w)
		}
	}

	// Update pass.
	for i := 0; i < n; i++ {
		coef := dt * fl.invArea[i]
		s.h[i] = S(C(s.h[i]) + coef*C(s.dh[i]))
		s.hu[i] = S(C(s.hu[i]) + coef*C(s.dhu[i]))
		s.hv[i] = S(C(s.hv[i]) + coef*C(s.dhv[i]))
	}

	s.accountSweep(uint64(len(fl.xl)+len(fl.yb)), uint64(len(fl.bCell)), uint64(n), 1)
}

// finiteDiffFaceParallel is the two-phase parallel variant of the
// face-centric sweep: phase one evaluates every face flux in parallel into
// the staging arrays (disjoint writes), phase two scatters them serially in
// the fixed face order. Because the flux values and the accumulation order
// match the serial kernel exactly, the result is bit-identical. All parallel
// phases dispatch prebound kernels on the persistent pool, so the sweep
// allocates nothing at steady state.
func (s *Solver[S, C]) finiteDiffFaceParallel(dt C) {
	g := C(s.cfg.Gravity)
	dry := s.dry
	fl := &s.faces
	workers := s.cfg.Workers
	n := s.mesh.NumCells()
	s.curDT = dt

	s.pool.ForN(workers, n, s.parZero)
	s.pool.ForN(workers, len(fl.xl), s.parFluxX)
	s.pool.ForN(workers, len(fl.yb), s.parFluxY)

	// Serial scatter in face order (matches the serial kernel's order).
	for k := range fl.xl {
		l, r := fl.xl[k], fl.xr[k]
		w := fl.xlen[k]
		fh, fhu, fhv := fl.fxh[k], fl.fxhu[k], fl.fxhv[k]
		s.dh[l] -= S(fh * w)
		s.dhu[l] -= S(fhu * w)
		s.dhv[l] -= S(fhv * w)
		s.dh[r] += S(fh * w)
		s.dhu[r] += S(fhu * w)
		s.dhv[r] += S(fhv * w)
	}
	for k := range fl.yb {
		b, tp := fl.yb[k], fl.yt[k]
		w := fl.ylen[k]
		fh, fhu, fhv := fl.fyh[k], fl.fyhu[k], fl.fyhv[k]
		s.dh[b] -= S(fh * w)
		s.dhu[b] -= S(fhu * w)
		s.dhv[b] -= S(fhv * w)
		s.dh[tp] += S(fh * w)
		s.dhu[tp] += S(fhu * w)
		s.dhv[tp] += S(fhv * w)
	}
	for k := range fl.bCell {
		i := fl.bCell[k]
		w := fl.bLen[k]
		switch fl.bSide[k] {
		case mesh.Left:
			s.dhu[i] += S(wallFluxX(g, dry, C(s.h[i]), C(s.hu[i]), -1) * w)
		case mesh.Right:
			s.dhu[i] -= S(wallFluxX(g, dry, C(s.h[i]), C(s.hu[i]), 1) * w)
		case mesh.Bottom:
			s.dhv[i] += S(wallFluxY(g, dry, C(s.h[i]), C(s.hv[i]), -1) * w)
		case mesh.Top:
			s.dhv[i] -= S(wallFluxY(g, dry, C(s.h[i]), C(s.hv[i]), 1) * w)
		}
	}

	s.pool.ForN(workers, n, s.parUpdate)

	s.accountSweep(uint64(len(fl.xl)+len(fl.yb)), uint64(len(fl.bCell)), uint64(n), 1)
}

// finiteDiffCell is the "unvectorized" cell-centric sweep: every cell
// gathers its neighbors through the adjacency cache and evaluates its own
// face fluxes, so each interior flux is computed twice — the scalar profile
// of CLAMR's original finite_diff loop.
func (s *Solver[S, C]) finiteDiffCell(dt C) {
	n := s.mesh.NumCells()
	s.curDT = dt
	s.pool.ForN(s.cfg.Workers, n, s.parCell)
	s.pool.ForN(s.cfg.Workers, n, s.parUpdate)

	// Cell-centric recomputes each interior flux from both sides.
	s.accountSweep(2*uint64(len(s.faces.xl)+len(s.faces.yb)), uint64(len(s.faces.bCell)), uint64(n), 1)
}

// cellRHS gathers cell i's neighbors and accumulates its full RHS —
// writes only index i, so cells sweep in parallel safely.
func (s *Solver[S, C]) cellRHS(m *mesh.Mesh, g C, i int) {
	{
		c := m.Cell(i)
		dx, dy := m.CellSize(c.Level)
		nb := m.Neighbors(i)
		dry := s.dry
		hi := C(s.h[i])
		hui := C(s.hu[i])
		hvi := C(s.hv[i])
		var dh, dhu, dhv C

		faceLen := func(nIdx int32, transverse float64) C {
			nLevel := m.Cell(int(nIdx)).Level
			if nLevel > c.Level {
				return C(transverse / 2)
			}
			return C(transverse)
		}

		if ns := nb.On(mesh.Left); len(ns) == 0 {
			dhu += wallFluxX(g, dry, hi, hui, -1) * C(dy)
		} else {
			for _, nIdx := range ns {
				w := faceLen(nIdx, dy)
				fh, fhu, fhv := rusanovX(g, dry, C(s.h[nIdx]), C(s.hu[nIdx]), C(s.hv[nIdx]), hi, hui, hvi)
				dh += fh * w
				dhu += fhu * w
				dhv += fhv * w
			}
		}
		if ns := nb.On(mesh.Right); len(ns) == 0 {
			dhu -= wallFluxX(g, dry, hi, hui, 1) * C(dy)
		} else {
			for _, nIdx := range ns {
				w := faceLen(nIdx, dy)
				fh, fhu, fhv := rusanovX(g, dry, hi, hui, hvi, C(s.h[nIdx]), C(s.hu[nIdx]), C(s.hv[nIdx]))
				dh -= fh * w
				dhu -= fhu * w
				dhv -= fhv * w
			}
		}
		if ns := nb.On(mesh.Bottom); len(ns) == 0 {
			dhv += wallFluxY(g, dry, hi, hvi, -1) * C(dx)
		} else {
			for _, nIdx := range ns {
				w := faceLen(nIdx, dx)
				fh, fhu, fhv := rusanovY(g, dry, C(s.h[nIdx]), C(s.hu[nIdx]), C(s.hv[nIdx]), hi, hui, hvi)
				dh += fh * w
				dhu += fhu * w
				dhv += fhv * w
			}
		}
		if ns := nb.On(mesh.Top); len(ns) == 0 {
			dhv -= wallFluxY(g, dry, hi, hvi, 1) * C(dx)
		} else {
			for _, nIdx := range ns {
				w := faceLen(nIdx, dx)
				fh, fhu, fhv := rusanovY(g, dry, hi, hui, hvi, C(s.h[nIdx]), C(s.hu[nIdx]), C(s.hv[nIdx]))
				dh -= fh * w
				dhu -= fhu * w
				dhv -= fhv * w
			}
		}

		s.dh[i], s.dhu[i], s.dhv[i] = S(dh), S(dhu), S(dhv)
	}
}

// accountSweep records the analytic tally of one finite-difference sweep.
func (s *Solver[S, C]) accountSweep(fluxEvals, wallEvals, cells, launches uint64) {
	sw := uint64(unsafeSizeofS[S]())
	var cv C
	cw := uint64(unsafeSizeof(cv))
	s.addFlops(fluxEvals*flopsPerInteriorFlux+wallEvals*flopsPerWallFlux+cells*flopsPerCellUpdate, 0)
	s.addTranscendental(fluxEvals*sqrtPerInteriorFlux + wallEvals*sqrtPerWallFlux)
	_ = cw
	s.counters.Add(metrics.Counters{
		LoadBytes:      fluxEvals*6*sw + wallEvals*2*sw + cells*3*sw,
		StoreBytes:     cells * 6 * sw,
		KernelLaunches: launches,
	})
	s.addConversions(fluxEvals*6 + wallEvals*2 + cells*6)
}
