// Command precisiond serves the repository's experiments over HTTP: a job
// queue with singleflight deduplication, a worker-limited scheduler, and a
// content-addressed on-disk result cache. Submitting the same experiment
// twice — across clients, sweeps or daemon restarts — costs one computation.
//
// Usage:
//
//	precisiond                          # listen on 127.0.0.1:7717
//	precisiond -addr :0                 # any free port (printed on stdout)
//	precisiond -cache /var/tmp/pcache   # persistent cache location
//	precisiond -workers 4 -queue-depth 128
//
// The daemon prints "listening on <host:port>" once the socket is open and
// shuts down gracefully on SIGINT/SIGTERM: in-flight jobs are cancelled
// between solver steps, queued jobs are failed so waiting clients unblock,
// and the cache (atomic writes only) is left consistent.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/serve/api"
	"repro/internal/serve/cache"
	"repro/internal/serve/queue"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("precisiond: ")

	var (
		addr       = flag.String("addr", "127.0.0.1:7717", "listen address (use :0 for any free port)")
		cacheDir   = flag.String("cache", "precision-cache", "result cache directory (created if needed)")
		workers    = flag.Int("workers", 2, "jobs executing concurrently")
		queueDepth = flag.Int("queue-depth", 64, "pending-job queue bound")
		lanes      = flag.Int("lanes", runtime.GOMAXPROCS(0), "total solver lanes divided among workers")
	)
	flag.Parse()

	c, err := cache.Open(*cacheDir)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	sched := queue.New(queue.Config{
		Workers:    *workers,
		QueueDepth: *queueDepth,
		Lanes:      *lanes,
		Cache:      c,
	})
	sched.Start(ctx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// Printed unconditionally so scripts can discover a :0-assigned port.
	fmt.Printf("listening on %s\n", ln.Addr())
	log.Printf("cache %s, %d workers, queue depth %d", c.Dir(), *workers, *queueDepth)

	srv := &http.Server{Handler: api.New(sched, c)}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	sched.Wait()
}
