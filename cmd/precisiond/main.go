// Command precisiond serves the repository's experiments over HTTP: a job
// queue with singleflight deduplication, a worker-limited scheduler, and a
// content-addressed on-disk result cache. Submitting the same experiment
// twice — across clients, sweeps or daemon restarts — costs one computation.
//
// Usage:
//
//	precisiond                          # listen on 127.0.0.1:7717
//	precisiond -addr :0                 # any free port (printed on stdout)
//	precisiond -cache /var/tmp/pcache   # persistent cache location
//	precisiond -workers 4 -queue-depth 128
//	precisiond -journal /var/tmp/precisiond.journal \
//	           -ckpt-dir /var/tmp/pckpt -ckpt-every 25
//	precisiond -log-level debug -debug-addr 127.0.0.1:7719
//	precisiond -lease-ttl 15s -verify-n 8     # tune the worker fleet
//	precisiond -workers 0                     # fleet-only: all work leased
//	precisiond -hedge-budget 0.15 -hedge-after 2s  # straggler hedging
//	precisiond -hot-bytes 134217728           # size the in-memory read tier
//	precisiond -campaign-budget 1000000 -campaign-slots 16
//	precisiond -arch 'Tesla P100'             # local energy/cost profile
//	precisiond -trace-export /tmp/traces      # Chrome trace_event dumps
//	precisiond -autotune-warm 5               # slower precision demotion
//
// The daemon is also the coordinator of a distributed worker fleet
// (DESIGN.md §9): cmd/precision-worker nodes register under /v1/workers,
// long-poll for lease grants off the same job board the local workers
// drain, heartbeat while running, and upload results. A lease whose worker
// goes silent for -lease-ttl expires and its job is re-queued under the
// original ID — a SIGKILL'd worker loses nothing. -verify-n N re-runs every
// Nth remotely-leased attempt on a second executor and admits the result
// only if both final-state hashes are bit-identical. -workers 0 turns off
// local execution entirely: the daemon only coordinates.
//
// Fleet health (DESIGN.md §13): every lease outcome feeds a per-worker
// EWMA circuit breaker (healthy → probation → quarantined, half-open
// probes to readmit); quarantined workers stop winning leases but keep
// heartbeating. GET /v1/workers reports each worker's breaker state and
// score. With -hedge-budget > 0 the coordinator re-dispatches a lease
// that outlives max(per-shape p99, -hedge-after) to a second worker —
// first result wins, a both-landed pair is hash-checked and journaled as
// a hedge_verified audit record. A job whose run fails with the same
// error kind on two distinct executors is parked as poisoned (released
// via DELETE /v1/jobs/{id}) instead of bouncing across the fleet.
//
// Campaigns (DESIGN.md §12) make parameter sweeps a server-side workload:
// POST /v1/campaigns takes a generator spec (grid, Monte Carlo ensemble or
// precision ladder) that the daemon expands lazily — weighted-fair across
// tenants, deduped against the cache before admission, journaled so a
// half-expanded campaign resumes after a crash under its original ID.
// -campaign-budget bounds the total estimated expansion (429 over it),
// -campaign-slots the in-flight fan-out, and -campaign-reserve holds queue
// slots campaigns may not occupy so interactive POST /v1/jobs stays
// responsive while a million-job campaign drains.
//
// Precision autotuning (DESIGN.md §15) closes the loop the escalation
// policy opened: a spec submitted with mode "auto" plus accuracy budgets
// (max_mass_error, max_linecut_linf) is resolved at admission to the
// cheapest concrete precision mode the fleet's accumulated evidence shows
// meets the budgets. Every shape starts at full; after -autotune-warm
// clean results the daemon probes one rung down, commits the demotion only
// if a shadow run on a second executor reproduces it bit-identically and
// its measured fidelity fits the requesting budgets, and reverts (with
// hysteresis) on any later numerical escalation. The learned table is
// journaled with the WAL, recovered on restart, and readable at
// GET /v1/autotune; job views report the resolved tuned_mode and the
// modeled joules/dollars saved against the full-precision baseline.
//
// Result reads go through the tiered read path (DESIGN.md §11): an
// in-memory hot tier of pre-serialized payloads (-hot-bytes, 0 disables),
// ETag/If-None-Match revalidation on the result endpoints, and — when
// workers serve replicas via -read-addr — digest-verified reads from the
// fleet before this node's disk is touched.
//
// With -journal, every accepted job is write-ahead journaled before it is
// acknowledged; after a crash (even SIGKILL) the daemon replays unfinished
// jobs on startup, resuming started ones from their latest periodic
// checkpoint when -ckpt-dir is set. -job-timeout bounds each execution
// attempt; jobs whose precision rung trips a numerical guard are retried
// one rung up automatically (DESIGN.md §7).
//
// Observability (DESIGN.md §8, §14): the daemon logs structured key=value
// lines to stderr at -log-level and serves Prometheus metrics at
// GET /metrics on the API address. Every job records a span timeline
// readable at GET /v1/jobs/{id}/trace (and embedded in the result
// payload); remotely-executed attempts stitch the worker's own solver,
// phase and checkpoint spans under the job's attempt span, so the timeline
// is one coherent cross-node view (?format=chrome renders it as Chrome
// trace_event JSON, and -trace-export dumps the same per completed job).
// The coordinator scrapes each worker's /metrics on the heartbeat cadence
// and serves the summed fleet exposition at GET /metrics/fleet. Completed
// jobs are priced in modeled joules and dollars — the executing worker's
// registered arch profile (or this node's -arch for local runs) applied to
// the run's deterministic counters — surfacing as span attributes, the
// precisiond_job_joules_total / precisiond_job_cost_dollars_total metrics,
// and per-campaign $/experiment aggregates. -debug-addr opens a second,
// loopback-only listener serving net/http/pprof — profiling stays off the
// API surface and off by default.
//
// Fault injection for chaos testing is armed via -faults or the
// PRECISIOND_FAULTS environment variable, e.g.
// 'cache.put=p:0.1,journal.sync=n:3' (see internal/fault); armed points
// report their hit/trip counts on /metrics.
//
// The daemon prints "listening on <host:port>" once the socket is open and
// shuts down gracefully on SIGINT/SIGTERM: in-flight jobs are cancelled
// between solver steps, queued jobs are failed so waiting clients unblock
// (journaled jobs are replayed on the next start), and the cache (atomic
// writes only) is left consistent.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/serve/api"
	"repro/internal/serve/autotune"
	"repro/internal/serve/cache"
	"repro/internal/serve/campaign"
	"repro/internal/serve/dispatch"
	"repro/internal/serve/queue"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:7717", "listen address (use :0 for any free port)")
		cacheDir     = flag.String("cache", "precision-cache", "result cache directory (created if needed)")
		hotBytes     = flag.Int64("hot-bytes", 64<<20, "in-memory hot tier byte cap for cached result payloads (0 = disabled)")
		workers      = flag.Int("workers", 2, "jobs executing concurrently on this node (0 = fleet-only; all work leased to remote workers)")
		queueDepth   = flag.Int("queue-depth", 64, "pending-job queue bound")
		lanes        = flag.Int("lanes", runtime.GOMAXPROCS(0), "total solver lanes divided among workers")
		journalPath  = flag.String("journal", "", "write-ahead job journal file (empty = no crash durability)")
		ckptDir      = flag.String("ckpt-dir", "", "periodic mid-run checkpoint directory (empty = resume from scratch)")
		ckptEvery    = flag.Int("ckpt-every", 25, "solver steps between periodic checkpoints (with -ckpt-dir)")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-attempt deadline for every job (0 = none; clients may set ?timeout=)")
		grace        = flag.Duration("grace", 2*time.Second, "how long a cancelled run may linger before its lane is reclaimed")
		leaseTTL     = flag.Duration("lease-ttl", 15*time.Second, "how long a remote worker's lease survives without a heartbeat")
		heartbeat    = flag.Duration("heartbeat", 0, "heartbeat cadence advertised to workers (0 = lease-ttl/3)")
		verifyN      = flag.Int("verify-n", 0, "re-run every Nth remotely-leased attempt on a second executor and require bit-identical state hashes (0 = off)")
		hedgeBudget  = flag.Float64("hedge-budget", 0, "straggler hedging: max concurrent hedged duplicates as a fraction of total fleet slots (0 = off)")
		hedgeAfter   = flag.Duration("hedge-after", 0, "floor on how long a lease runs before a hedge may fire; the per-shape p99 raises it (0 = lease-ttl/2)")
		campBudget   = flag.Int64("campaign-budget", 1<<20, "cap on total estimated campaign expansion (new campaign + live remainders); over-budget submissions get 429")
		campSlots    = flag.Int("campaign-slots", 16, "campaign jobs concurrently in flight across all campaigns")
		campReserve  = flag.Int("campaign-reserve", -1, "queue slots held for interactive POST /v1/jobs that campaign expansion may not occupy (-1 = queue-depth/4)")
		archName     = flag.String("arch", "Haswell", "platform profile pricing locally-executed jobs in joules/dollars (see internal/arch; empty = no local energy accounting)")
		autotuneWarm = flag.Int("autotune-warm", 3, "clean results per scenario shape before the autotuner probes one precision rung down (shadow-verified)")
		traceExport  = flag.String("trace-export", "", "dump every completed job's stitched span timeline as Chrome trace_event JSON into this directory (empty = off)")
		faults       = flag.String("faults", "", "arm fault-injection points, e.g. 'cache.put=p:0.1,journal.sync=n:3'")
		logLevel     = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
		debugAddr    = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = off)")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "precisiond:", err)
		os.Exit(1)
	}
	logger := obs.NewLogger(os.Stderr, level)
	fatal := func(err error) {
		logger.Error("fatal", obs.Str("error", err.Error()))
		os.Exit(1)
	}

	if *faults != "" {
		if err := fault.Arm(*faults); err != nil {
			fatal(err)
		}
	} else if err := fault.ArmFromEnv(); err != nil {
		fatal(err)
	}
	if fault.Enabled() {
		src := *faults
		if src == "" {
			src = "$" + fault.EnvFaults
		}
		logger.Warn("fault injection ARMED", obs.Str("spec", src))
	}

	reg := obs.Default
	fault.RegisterMetrics(reg)

	c, err := cache.Open(*cacheDir, cache.WithHotBytes(*hotBytes))
	if err != nil {
		fatal(err)
	}
	c.RegisterMetrics(reg)
	var journal *queue.Journal
	if *journalPath != "" {
		journal, err = queue.OpenJournal(*journalPath)
		if err != nil {
			fatal(err)
		}
		defer journal.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// One dispatch board carries both backends: the local solver lanes and
	// the remote worker fleet. -workers 0 drops the local backend entirely.
	disp := dispatch.New(dispatch.Options{Obs: reg, Log: logger})
	coordCfg := dispatch.CoordinatorConfig{
		LeaseTTL:    *leaseTTL,
		Heartbeat:   *heartbeat,
		VerifyN:     *verifyN,
		HedgeBudget: *hedgeBudget,
		HedgeAfter:  *hedgeAfter,
		Obs:         reg,
		Log:         logger,
	}
	if journal != nil {
		// Hedge verifications are journaled as audit records: every hedged
		// pair that produced two completions leaves a hedge_verified line.
		coordCfg.HedgeRecord = func(jobID, specHash, stateHash, winner, loser string, match bool) {
			_ = journal.HedgeVerified(jobID, specHash, stateHash, winner, loser, match)
		}
	}
	fleet := dispatch.NewCoordinator(disp, coordCfg)
	// Remote read tier: a probe that misses the hot tier may be served from
	// a worker replica store before touching this node's disk. The cache
	// re-verifies the payload digest, so a wrong or stale replica degrades
	// to a disk read, never to wrong bytes.
	c.SetRemote(replicaFetcher(fleet, logger))

	// Closed-loop precision autotuning (DESIGN.md §15): mode:"auto" specs
	// resolve to the cheapest mode the fleet's evidence supports; demotions
	// only commit after a shadow run on a second executor reproduces the
	// result bit-identically (the same machinery -verify-n uses).
	tuner := autotune.New(autotune.Config{
		Journal:  journal,
		Verify:   fleet.VerifyDemotion,
		WarmRuns: *autotuneWarm,
		Obs:      reg,
		Log:      logger,
	})
	if journal != nil {
		if err := tuner.Recover(journal); err != nil {
			fatal(err)
		}
	}

	reserve := *campReserve
	if reserve < 0 {
		reserve = *queueDepth / 4
	}
	cfg := queue.Config{
		Tuner:        tuner,
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		Lanes:        *lanes,
		Cache:        c,
		Journal:      journal,
		JobTimeout:   *jobTimeout,
		AbandonGrace: *grace,
		Dispatch:     disp,
		DisableLocal: *workers == 0,
		Obs:          reg,
		Log:          logger,

		ReserveInteractive: reserve,
	}
	if *ckptDir != "" {
		cfg.CheckpointDir = *ckptDir
		cfg.CheckpointEvery = *ckptEvery
	}
	if *archName != "" {
		// Local energy accounting: jobs the fleet coordinator did not
		// already price (remote uploads carry the executing worker's
		// profile) are modeled on this node's profile.
		spec, err := arch.FindSpec(*archName)
		if err != nil {
			fatal(err)
		}
		cfg.Energy = func(backend, worker string, res *runner.Result) *runner.Energy {
			return dispatch.ComputeEnergy(spec, res)
		}
	}
	if *traceExport != "" {
		if err := os.MkdirAll(*traceExport, 0o755); err != nil {
			fatal(err)
		}
		dir := *traceExport
		cfg.OnComplete = func(job *queue.Job, res *runner.Result) {
			if res.Trace == nil {
				return
			}
			path := filepath.Join(dir, job.ID+".trace.json")
			if err := os.WriteFile(path, obs.ChromeTrace(*res.Trace), 0o644); err != nil {
				logger.Warn("trace export failed",
					obs.Str("job", job.ID), obs.Str("error", err.Error()))
			}
		}
		logger.Info("trace export on", obs.Str("dir", dir))
	}
	sched := queue.New(cfg)
	if journal != nil {
		requeued, healed, err := sched.Recover()
		if err != nil {
			fatal(err)
		}
		if requeued > 0 || healed > 0 {
			logger.Info("recovered jobs from journal",
				obs.Str("journal", *journalPath),
				obs.Str("requeued", fmt.Sprint(requeued)),
				obs.Str("healed", fmt.Sprint(healed)))
		}
	}
	sched.Start(ctx)

	// Campaign manager: server-side sweeps expanded lazily over the same
	// scheduler, journal and metrics registry (DESIGN.md §12).
	localSlots := *workers
	camps := campaign.New(campaign.Config{
		Sched:   sched,
		Journal: journal,
		Budget:  *campBudget,
		Slots:   *campSlots,
		// Shed bulk admission when quarantine eats the fleet: campaign
		// expansion tracks local lanes plus non-quarantined remote slots.
		HealthyCapacity: func() int { return localSlots + fleet.HealthyCapacity() },
		Obs:             reg,
		Log:             logger,
	})
	if journal != nil {
		resumed, err := camps.Recover()
		if err != nil {
			fatal(err)
		}
		if resumed > 0 {
			logger.Info("recovered campaigns from journal",
				obs.Str("journal", *journalPath),
				obs.Str("resumed", fmt.Sprint(resumed)))
		}
	}
	camps.Start(ctx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	// Printed unconditionally so scripts can discover a :0-assigned port.
	fmt.Printf("listening on %s\n", ln.Addr())
	logger.Info("precisiond up",
		obs.Str("addr", ln.Addr().String()), obs.Str("cache", c.Dir()),
		obs.Str("workers", fmt.Sprint(*workers)),
		obs.Str("queue_depth", fmt.Sprint(*queueDepth)),
		obs.Str("log_level", level.String()))

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugLn, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			fatal(err)
		}
		debugSrv = &http.Server{Handler: debugMux(reg)}
		go debugSrv.Serve(debugLn)
		logger.Info("debug server up (pprof + metrics)", obs.Str("addr", debugLn.Addr().String()))
	}

	srv := &http.Server{Handler: api.New(sched, c,
		api.WithMetrics(reg), api.WithDispatch(fleet), api.WithCampaigns(camps),
		api.WithAutotune(tuner))}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		fatal(err)
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("shutdown", obs.Str("error", err.Error()))
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(shutdownCtx)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("serve", obs.Str("error", err.Error()))
	}
	sched.Wait()
	camps.Wait()
	tuner.Quiesce()
	if fault.Enabled() {
		for _, fc := range fault.Counts() {
			logger.Info("fault point summary",
				obs.Str("point", fc.Name),
				obs.Str("trips", fmt.Sprint(fc.Trips)),
				obs.Str("hits", fmt.Sprint(fc.Hits)))
		}
	}
}

// replicaFetcher adapts the fleet's hash→workers read index into the
// cache's remote tier hook. One short-deadline GET per probe: replica
// reads must be strictly cheaper than the disk read they stand in for, so
// a slow or dead worker fails the probe fast and the cache falls through.
func replicaFetcher(fleet *dispatch.Coordinator, logger *obs.Logger) cache.RemoteFetch {
	client := &http.Client{Timeout: 2 * time.Second}
	const bodyCap = 16 << 20
	return func(key, wantDigest string) ([]byte, bool) {
		url, ok := fleet.ReplicaSource(key)
		if !ok {
			return nil, false
		}
		resp, err := client.Get(url)
		if err != nil {
			logger.Debug("replica fetch failed", obs.Str("url", url), obs.Str("error", err.Error()))
			return nil, false
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, false
		}
		payload, err := io.ReadAll(io.LimitReader(resp.Body, bodyCap+1))
		if err != nil || len(payload) == 0 || len(payload) > bodyCap {
			return nil, false
		}
		return payload, true
	}
}

// debugMux builds the -debug-addr surface: net/http/pprof (the DefaultServeMux
// registrations, re-homed on a private mux so the API listener never exposes
// them) plus a convenience copy of /metrics.
func debugMux(reg *obs.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/metrics", reg.Handler())
	return mux
}
