// Command precisiond serves the repository's experiments over HTTP: a job
// queue with singleflight deduplication, a worker-limited scheduler, and a
// content-addressed on-disk result cache. Submitting the same experiment
// twice — across clients, sweeps or daemon restarts — costs one computation.
//
// Usage:
//
//	precisiond                          # listen on 127.0.0.1:7717
//	precisiond -addr :0                 # any free port (printed on stdout)
//	precisiond -cache /var/tmp/pcache   # persistent cache location
//	precisiond -workers 4 -queue-depth 128
//	precisiond -journal /var/tmp/precisiond.journal \
//	           -ckpt-dir /var/tmp/pckpt -ckpt-every 25
//
// With -journal, every accepted job is write-ahead journaled before it is
// acknowledged; after a crash (even SIGKILL) the daemon replays unfinished
// jobs on startup, resuming started ones from their latest periodic
// checkpoint when -ckpt-dir is set. -job-timeout bounds each execution
// attempt; jobs whose precision rung trips a numerical guard are retried
// one rung up automatically (DESIGN.md §7).
//
// Fault injection for chaos testing is armed via -faults or the
// PRECISIOND_FAULTS environment variable, e.g.
// 'cache.put=p:0.1,journal.sync=n:3' (see internal/fault).
//
// The daemon prints "listening on <host:port>" once the socket is open and
// shuts down gracefully on SIGINT/SIGTERM: in-flight jobs are cancelled
// between solver steps, queued jobs are failed so waiting clients unblock
// (journaled jobs are replayed on the next start), and the cache (atomic
// writes only) is left consistent.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/serve/api"
	"repro/internal/serve/cache"
	"repro/internal/serve/queue"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("precisiond: ")

	var (
		addr        = flag.String("addr", "127.0.0.1:7717", "listen address (use :0 for any free port)")
		cacheDir    = flag.String("cache", "precision-cache", "result cache directory (created if needed)")
		workers     = flag.Int("workers", 2, "jobs executing concurrently")
		queueDepth  = flag.Int("queue-depth", 64, "pending-job queue bound")
		lanes       = flag.Int("lanes", runtime.GOMAXPROCS(0), "total solver lanes divided among workers")
		journalPath = flag.String("journal", "", "write-ahead job journal file (empty = no crash durability)")
		ckptDir     = flag.String("ckpt-dir", "", "periodic mid-run checkpoint directory (empty = resume from scratch)")
		ckptEvery   = flag.Int("ckpt-every", 25, "solver steps between periodic checkpoints (with -ckpt-dir)")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-attempt deadline for every job (0 = none; clients may set ?timeout=)")
		grace       = flag.Duration("grace", 2*time.Second, "how long a cancelled run may linger before its lane is reclaimed")
		faults      = flag.String("faults", "", "arm fault-injection points, e.g. 'cache.put=p:0.1,journal.sync=n:3'")
	)
	flag.Parse()

	if *faults != "" {
		if err := fault.Arm(*faults); err != nil {
			log.Fatal(err)
		}
	} else if err := fault.ArmFromEnv(); err != nil {
		log.Fatal(err)
	}
	if fault.Enabled() {
		src := *faults
		if src == "" {
			src = "$" + fault.EnvFaults
		}
		log.Printf("fault injection ARMED: %s", src)
	}

	c, err := cache.Open(*cacheDir)
	if err != nil {
		log.Fatal(err)
	}
	var journal *queue.Journal
	if *journalPath != "" {
		journal, err = queue.OpenJournal(*journalPath)
		if err != nil {
			log.Fatal(err)
		}
		defer journal.Close()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	cfg := queue.Config{
		Workers:      *workers,
		QueueDepth:   *queueDepth,
		Lanes:        *lanes,
		Cache:        c,
		Journal:      journal,
		JobTimeout:   *jobTimeout,
		AbandonGrace: *grace,
	}
	if *ckptDir != "" {
		cfg.CheckpointDir = *ckptDir
		cfg.CheckpointEvery = *ckptEvery
	}
	sched := queue.New(cfg)
	if journal != nil {
		requeued, healed, err := sched.Recover()
		if err != nil {
			log.Fatal(err)
		}
		if requeued > 0 || healed > 0 {
			log.Printf("recovered %d jobs from %s (%d re-queued, %d healed from cache)",
				requeued+healed, *journalPath, requeued, healed)
		}
	}
	sched.Start(ctx)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// Printed unconditionally so scripts can discover a :0-assigned port.
	fmt.Printf("listening on %s\n", ln.Addr())
	log.Printf("cache %s, %d workers, queue depth %d", c.Dir(), *workers, *queueDepth)

	srv := &http.Server{Handler: api.New(sched, c)}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()

	select {
	case err := <-done:
		log.Fatal(err)
	case <-ctx.Done():
	}
	log.Print("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if err := <-done; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("serve: %v", err)
	}
	sched.Wait()
	if fault.Enabled() {
		for _, fc := range fault.Counts() {
			log.Printf("fault %s: tripped %d of %d evaluations", fc.Name, fc.Trips, fc.Hits)
		}
	}
}
