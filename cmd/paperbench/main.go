// Command paperbench regenerates every table and figure of the paper's
// evaluation section, printing formatted results to stdout and writing
// figure series as CSV files.
//
// Usage:
//
//	paperbench                              # all experiments, quick scale
//	paperbench -scale standard              # larger problems
//	paperbench -exp table1,fig4             # a subset
//	paperbench -outdir results              # also write CSVs there
//
// Scales: quick (seconds), standard (tens of seconds), paper (the paper's
// problem sizes — 1920² CLAMR, 20³ elements × order 7 SELF; hours).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/analysis"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")

	var (
		scaleStr = flag.String("scale", "quick", "problem scale: quick|standard|paper")
		expStr   = flag.String("exp", "all", "comma-separated experiment ids (table1..table7, fig1..fig5) or 'all'")
		outdir   = flag.String("outdir", "", "directory for figure CSV files (created if needed)")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range repro.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	scale, err := repro.ParseScale(*scaleStr)
	if err != nil {
		log.Fatal(err)
	}

	wanted := map[string]bool{}
	if *expStr != "all" {
		for _, id := range strings.Split(*expStr, ",") {
			wanted[strings.TrimSpace(id)] = true
		}
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	session := repro.NewSession(scale)
	ran := 0
	for _, e := range repro.Experiments {
		if len(wanted) > 0 && !wanted[e.ID] {
			continue
		}
		ran++
		start := time.Now()
		ms := metrics.StartMemSample()
		out, err := session.RunExperiment(e.ID)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		allocB, allocN := ms.Delta()
		fmt.Printf("════ %s — %s (%v, heap %s in %s objects) ════\n%s\n",
			e.ID, e.Title, time.Since(start).Round(time.Millisecond),
			metrics.Bytes(allocB), metrics.SI(allocN), out.Text)
		if *outdir != "" && len(out.Series) > 0 {
			path := filepath.Join(*outdir, e.ID+".csv")
			f, err := os.Create(path)
			if err != nil {
				log.Fatal(err)
			}
			if err := analysis.WriteCSV(f, out.Series...); err != nil {
				log.Fatal(err)
			}
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("    (series written to %s)\n\n", path)
		}
	}
	if ran == 0 {
		log.Fatalf("no experiments matched %q; try -list", *expStr)
	}
}
