// Command paperbench regenerates every table and figure of the paper's
// evaluation section, printing formatted results to stdout and writing
// figure series as CSV files.
//
// Usage:
//
//	paperbench                              # all experiments, quick scale
//	paperbench -scale standard              # larger problems
//	paperbench -exp table1,fig4             # a subset
//	paperbench -outdir results              # also write CSVs there
//
// Scales: quick (seconds), standard (tens of seconds), paper (the paper's
// problem sizes — 1920² CLAMR, 20³ elements × order 7 SELF; hours).
//
// An interrupt (Ctrl-C) stops the sweep between solver steps; results and
// CSVs of already-completed experiments are flushed before exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro"
	"repro/internal/runner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("paperbench: ")

	var (
		scaleStr = flag.String("scale", "quick", "problem scale: quick|standard|paper")
		expStr   = flag.String("exp", "all", "comma-separated experiment ids (table1..table7, fig1..fig5) or 'all'")
		outdir   = flag.String("outdir", "", "directory for figure CSV files (created if needed)")
		list     = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range repro.Experiments {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	scale, err := repro.ParseScale(*scaleStr)
	if err != nil {
		log.Fatal(err)
	}

	var ids []string
	if *expStr != "all" {
		for _, id := range strings.Split(*expStr, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	res, err := runner.PaperSweep(ctx, runner.SweepConfig{
		Scale:  scale,
		IDs:    ids,
		OutDir: *outdir,
	}, os.Stdout)
	if err != nil {
		log.Fatal(err)
	}
	if res.Interrupted {
		os.Exit(130) // conventional SIGINT exit status
	}
}
