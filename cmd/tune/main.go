// Command tune demonstrates the automated mixed-precision search of
// internal/tuner (CRAFT/Precimonious-style, the tool family of the paper's
// §III.B) on built-in demonstration kernels: it finds, per named variable,
// the lowest precision that keeps the output within an error bound.
//
// Usage:
//
//	tune -program quadratic -bound 1e-6 -strategy greedy
//	tune -program globalsum -bound 1e-8 -strategy bisect
//	tune -list
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sort"

	"repro/internal/tuner"
)

// programs are the built-in demonstration kernels.
var programs = map[string]struct {
	desc string
	fn   tuner.Program
}{
	"quadratic": {
		"quadratic-formula roots with catastrophic cancellation in the discriminant",
		func(r *tuner.Rounder) []float64 {
			a := r.R("a", 1)
			b := r.R("b", -(1e8 + 1e-3))
			c := r.R("c", 1e8*1e-3)
			disc := r.R("disc", b*b-4*a*c)
			sq := r.R("sqrt", math.Sqrt(disc))
			x1 := r.R("x1", (-b+sq)/(2*a))
			x2 := r.R("x2", c/(a*x1))
			return []float64{x1, x2}
		},
	},
	"globalsum": {
		"the paper's pattern: local flux math plus a cancellation-prone global sum",
		func(r *tuner.Rounder) []float64 {
			const n = 4000
			var sum, sample float64
			for i := 0; i < n; i++ {
				x := 1 + float64(i%17)/16
				flux := r.R("flux", x*x*0.5+x)
				if i == 7 {
					sample = flux
				}
				sign := 1.0
				if i%2 == 1 {
					sign = -1.0000001
				}
				sum = r.R("sum", sum+sign*flux)
			}
			return []float64{sum, sample}
		},
	},
	"horner": {
		"Horner evaluation of a degree-8 polynomial at many points",
		func(r *tuner.Rounder) []float64 {
			coef := []float64{1, -3.5, 2.25, 0.75, -0.125, 2, -1, 0.5, 0.03125}
			var acc float64
			for p := 0; p < 64; p++ {
				x := r.R("x", -1+float64(p)/32)
				v := 0.0
				for _, cc := range coef {
					v = r.R("acc", v*x+cc)
				}
				acc += v
			}
			return []float64{acc}
		},
	},
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tune: ")
	var (
		progName = flag.String("program", "globalsum", "built-in kernel to tune")
		bound    = flag.Float64("bound", 1e-7, "maximum relative output error")
		strategy = flag.String("strategy", "greedy", "search strategy: greedy|bisect")
		list     = flag.Bool("list", false, "list built-in programs")
	)
	flag.Parse()

	if *list {
		names := make([]string, 0, len(programs))
		for name := range programs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Printf("%-10s %s\n", name, programs[name].desc)
		}
		return
	}
	prog, ok := programs[*progName]
	if !ok {
		log.Fatalf("unknown program %q; try -list", *progName)
	}
	tn, err := tuner.New(prog.fn)
	if err != nil {
		log.Fatal(err)
	}
	var res tuner.Result
	switch *strategy {
	case "greedy":
		res = tn.SearchGreedy(*bound)
	case "bisect":
		res = tn.SearchBisect(*bound)
	default:
		log.Fatalf("unknown strategy %q", *strategy)
	}
	fmt.Printf("program: %s (%s)\nbound:   %.3g\n\n%s", *progName, prog.desc, *bound, res)
	fmt.Printf("\ncost %.3g vs all-double %.3g — saving %.0f%% of weighted storage/compute\n",
		res.Cost, res.DoubleCost, 100*res.Saving())
}
