// Command clamr runs the shallow-water AMR mini-app (the CLAMR analogue)
// on the cylindrical dam-break problem at a selectable precision, printing
// runtime, instrumentation, conservation audits, and optionally a center
// line-cut CSV and a checkpoint file.
//
// Usage:
//
//	clamr -grid 128 -levels 2 -steps 500 -precision mixed \
//	      -kernel vectorized -linecut cut.csv -checkpoint state.mpck
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/analysis"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("clamr: ")

	var (
		grid      = flag.Int("grid", 128, "coarse grid size per dimension")
		levels    = flag.Int("levels", 2, "maximum AMR refinement levels")
		steps     = flag.Int("steps", 200, "time steps to run")
		precStr   = flag.String("precision", "full", "precision mode: half|min|mixed|full")
		kernelStr = flag.String("kernel", "vectorized", "finite_diff kernel: vectorized|unvectorized")
		amrEvery  = flag.Int("amr-interval", 20, "steps between mesh adaptations (0 = off)")
		linecut   = flag.String("linecut", "", "write the center line-cut CSV to this file")
		ckpt      = flag.String("checkpoint", "", "write a checkpoint to this file")
		cutN      = flag.Int("linecut-points", 256, "line-cut sample count")
		workers   = flag.Int("workers", 1, "parallel workers (results bit-identical at any count)")
		dump      = flag.String("dump", "", "write a zfp-compressed height dump to this file")
		dumpRate  = flag.Int("dump-rate", 12, "compressed dump bits per value")
	)
	flag.Parse()

	mode, err := repro.ParseMode(*precStr)
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.CLAMRConfig{
		NX: *grid, NY: *grid,
		MaxLevel:    *levels,
		AMRInterval: *amrEvery,
		Workers:     *workers,
	}
	switch *kernelStr {
	case "vectorized":
		cfg.Kernel = repro.KernelVectorized
	case "unvectorized", "scalar":
		cfg.Kernel = repro.KernelUnvectorized
	default:
		log.Fatalf("unknown kernel %q", *kernelStr)
	}

	res, err := repro.RunCLAMRStudy(mode, cfg, *steps, *cutN)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("precision      %v\n", mode)
	fmt.Printf("kernel         %v\n", cfg.Kernel)
	fmt.Printf("cells          %d (grid %d², %d AMR levels)\n", res.Cells, *grid, *levels)
	fmt.Printf("steps          %d\n", res.Steps)
	fmt.Printf("wall time      %v\n", res.WallTime)
	fmt.Printf("finite_diff    %v\n", res.FiniteDiffTime)
	fmt.Printf("state memory   %s\n", metrics.Bytes(res.StateBytes))
	fmt.Printf("checkpoint     %s\n", metrics.Bytes(uint64(res.CheckpointBytes)))
	fmt.Printf("mass drift     %.3g (relative, reproducible sum)\n", res.MassError)
	fmt.Printf("counters       %v\n", res.Counters)

	if *linecut != "" {
		f, err := os.Create(*linecut)
		if err != nil {
			log.Fatal(err)
		}
		if err := analysis.WriteCSV(f, res.LineCut); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("line cut       %s (%d points)\n", *linecut, res.LineCut.Len())
	}
	if *dump != "" {
		r, err := repro.NewDamBreak(mode, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.Run(*steps); err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*dump)
		if err != nil {
			log.Fatal(err)
		}
		n, err := r.WriteFieldDump(f, 4**grid, 4**grid, *dumpRate)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("compressed dump  %s (%s at %d bits/value)\n", *dump, metrics.Bytes(uint64(n)), *dumpRate)
	}
	if *ckpt != "" {
		// Re-run briefly to produce a Runner for checkpointing at the
		// final state (the study API returns sizes, not the writer).
		r, err := repro.NewDamBreak(mode, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := r.Run(*steps); err != nil {
			log.Fatal(err)
		}
		f, err := os.Create(*ckpt)
		if err != nil {
			log.Fatal(err)
		}
		n, err := r.WriteCheckpoint(f)
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("checkpoint written to %s (%s)\n", *ckpt, metrics.Bytes(uint64(n)))
	}
}
