// Command self runs the spectral element compressible-flow mini-app (the
// SELF analogue) on the rising thermal bubble at single or double
// precision, printing runtime, instrumentation and diagnostics, and
// optionally the density-anomaly line cut as CSV.
//
// The paper's configuration is -elements 20 -order 7 -steps 100 (about 24M
// degrees of freedom); the defaults are a laptop-friendly fraction of it.
//
// Usage:
//
//	self -elements 8 -order 7 -steps 50 -precision single \
//	     -math native -linecut anomaly.csv
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/analysis"
	"repro/internal/metrics"
	"repro/internal/self"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("self: ")

	var (
		elements = flag.Int("elements", 6, "elements per direction")
		order    = flag.Int("order", 5, "polynomial order (nodes per direction = order+1)")
		steps    = flag.Int("steps", 50, "RK3 time steps")
		precStr  = flag.String("precision", "double", "precision: single|double|mixed")
		mathStr  = flag.String("math", "native", "single-precision math profile: native|promoted")
		linecut  = flag.String("linecut", "", "write the density-anomaly line cut CSV to this file")
		cutN     = flag.Int("linecut-points", 256, "line-cut sample count")
		workers  = flag.Int("workers", 1, "parallel workers (results bit-identical at any count)")
	)
	flag.Parse()

	mode, err := repro.ParseMode(*precStr)
	if err != nil {
		log.Fatal(err)
	}
	cfg := repro.SELFConfig{Elements: *elements, Order: *order, Workers: *workers}
	switch *mathStr {
	case "native":
		cfg.MathMode = self.MathNative
	case "promoted", "gnu":
		cfg.MathMode = self.MathPromoted
	default:
		log.Fatalf("unknown math profile %q", *mathStr)
	}

	res, err := repro.RunSELFStudy(mode, cfg, *steps, *cutN)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("precision      %v\n", mode)
	fmt.Printf("math profile   %v\n", cfg.MathMode)
	fmt.Printf("elements       %d³ at order %d (%d DOF)\n", *elements, *order, res.DOF)
	fmt.Printf("steps          %d\n", res.Steps)
	fmt.Printf("wall time      %v\n", res.WallTime)
	fmt.Printf("state memory   %s\n", metrics.Bytes(res.StateBytes))
	fmt.Printf("counters       %v\n", res.Counters)
	fmt.Printf("anomaly scale  %.4g (max |ρ'| on the center line)\n", res.LineCut.MaxAbs())

	if *linecut != "" {
		f, err := os.Create(*linecut)
		if err != nil {
			log.Fatal(err)
		}
		if err := analysis.WriteCSV(f, res.LineCut); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("line cut       %s (%d points)\n", *linecut, res.LineCut.Len())
	}
}
