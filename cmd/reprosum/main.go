// Command reprosum demonstrates the reproducible global sums of §III.C:
// it builds an ill-conditioned summation instance, runs every algorithm
// serially and in parallel, and reports recovered decimal digits, bit-level
// reproducibility under permutation and worker-count changes, and
// throughput.
//
// Usage:
//
//	reprosum -n 1000000 -cond 1e12 -workers 8
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"repro/internal/reduce"
)

func digits(got, exact float64) float64 {
	if got == exact {
		return 17
	}
	rel := math.Abs(got-exact) / math.Abs(exact)
	return math.Min(17, -math.Log10(rel))
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("reprosum: ")

	var (
		n       = flag.Int("n", 1_000_000, "number of addends")
		cond    = flag.Float64("cond", 1e12, "conditioning of the instance (larger = harder)")
		workers = flag.Int("workers", 8, "parallel workers")
		seed    = flag.Int64("seed", 42, "instance seed")
	)
	flag.Parse()

	xs, exact := reduce.IllConditioned(*n, *cond, *seed)
	fmt.Printf("instance: n=%d cond=%.3g exact sum=%.17g\n\n", len(xs), *cond, exact)
	fmt.Printf("%-18s %-8s %-10s %-12s %-14s %s\n",
		"method", "digits", "serial", "parallel", "perm-stable", "worker-stable")

	rng := rand.New(rand.NewSource(*seed + 1))
	perm := make([]float64, len(xs))
	copy(perm, xs)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })

	for _, m := range reduce.Methods {
		t0 := time.Now()
		serial := reduce.Sum(xs, m)
		dSerial := time.Since(t0)

		t0 = time.Now()
		parallel := reduce.ParallelSum(xs, *workers, m)
		dParallel := time.Since(t0)

		permuted := reduce.Sum(perm, m)
		otherWorkers := reduce.ParallelSum(xs, *workers/2+1, m)

		permStable := serial == permuted
		workerStable := parallel == otherWorkers
		fmt.Printf("%-18s %-8.1f %-10v %-12v %-14v %v\n",
			m, digits(serial, exact), dSerial.Round(time.Microsecond),
			dParallel.Round(time.Microsecond), permStable, workerStable)
		if m.IsReproducible() && (!permStable || !workerStable) {
			log.Fatalf("%v violated its reproducibility guarantee", m)
		}
	}

	fmt.Println("\nreproducible methods must show perm-stable and worker-stable = true;")
	fmt.Println("naive summation typically carries ~7 digits on ill-conditioned data")
	fmt.Println("while the reproducible/exact methods recover 15+ (paper §III.C).")
}
