// Command precision-worker is a fleet node: it registers with a precisiond
// coordinator, long-polls for lease grants, executes leased experiments
// through the deterministic runner, heartbeats while running, and uploads
// results. Placement never changes results (DESIGN.md §5): a worker
// computes exactly the bytes the daemon would have computed locally, and
// the coordinator admits an upload only if it round-trips the versioned
// spec hash.
//
// Usage:
//
//	precision-worker -coordinator http://127.0.0.1:7717
//	precision-worker -slots 2 -lanes 2          # two concurrent leases
//	precision-worker -apps clamr -modes min,mixed
//	precision-worker -read-addr 127.0.0.1:0     # serve replica reads + /metrics
//	precision-worker -arch 'Tesla P100'         # energy/cost platform profile
//	precision-worker -drain-grace 60s           # SIGTERM drain deadline
//	precision-worker -faults 'worker.slow=x:4'  # act as a 4x straggler
//
// With -read-addr, the worker also participates in the coordinator's
// tiered read path (DESIGN.md §11): it keeps a byte-capped replica store
// of canonical result payloads it computed (pulled back from the
// coordinator after each completion, since the scheduler re-marshals
// results before caching), reports the held spec hashes on heartbeats,
// and serves them at GET <read-addr>/replica/{hash}. The coordinator
// digest-verifies every replica payload, so this store can only ever
// offload reads, never corrupt them.
//
// Observability (DESIGN.md §14): the same address serves the worker's own
// Prometheus exposition at GET <read-addr>/metrics, which the coordinator
// scrapes on the heartbeat cadence and folds into GET /metrics/fleet.
// Each lease grant carries trace context (the job's trace ID plus the
// coordinator-side attempt span); the worker records its solver, per-phase
// and checkpoint spans under it, streams partial snapshots on heartbeats,
// and ships the final timeline beside the result upload — never inside the
// result payload, which stays the byte-identical deterministic document.
// The -arch profile (see internal/arch; default Haswell) is advertised at
// registration so the coordinator can price each completed job in joules
// and dollars from its deterministic counters.
//
// The worker holds no durable state. Kill it — even SIGKILL — and its
// leases expire at the coordinator after the lease TTL; the scheduler
// re-queues the jobs under their original IDs and another node picks them
// up.
//
// The first SIGINT/SIGTERM starts a graceful drain: lease polling stops,
// running leases finish (heartbeats continue so they are not expired),
// results upload, and the worker deregisters reporting how long the drain
// took — no work is lost and nothing is re-run. A second signal, or the
// -drain-grace deadline, hard-cancels the runs and deregisters
// immediately (the coordinator re-queues the leases on deregistration).
//
// Fault injection (armed via -faults or the shared PRECISIOND_FAULTS
// environment variable):
//
//	worker.heartbeat.drop  suppress outgoing heartbeats (partition sim)
//	worker.flap            same, for periodic e:<k> arming — the worker
//	                       looks intermittently unreachable
//	worker.slow            x:<factor>: inflate every run's wall time by
//	                       the factor — a straggler simulator that keeps
//	                       results bit-identical
package main

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/serve/cache"
	"repro/internal/serve/dispatch"
)

func main() {
	var (
		coordinator = flag.String("coordinator", "http://127.0.0.1:7717", "precisiond base URL")
		name        = flag.String("name", "", "worker name advertised at registration (default: hostname)")
		slots       = flag.Int("slots", 1, "leases executed concurrently")
		lanes       = flag.Int("lanes", 0, "solver lanes per lease (default: GOMAXPROCS/slots)")
		apps        = flag.String("apps", "", "comma-separated app allowlist advertised to the coordinator (empty = all)")
		modes       = flag.String("modes", "", "comma-separated precision-mode allowlist (empty = all)")
		readAddr    = flag.String("read-addr", "", "serve completed result payloads for fleet-replicated reads, plus /metrics, on this address (empty = off; use :0 for any free port)")
		replicaMax  = flag.Int64("replica-bytes", 64<<20, "replica store byte cap (with -read-addr)")
		archName    = flag.String("arch", "Haswell", "platform profile advertised for energy/cost accounting (see internal/arch; empty = none)")
		faults      = flag.String("faults", "", "arm fault-injection points, e.g. 'worker.heartbeat.drop=n:3'")
		drainGrace  = flag.Duration("drain-grace", 30*time.Second, "max time a graceful drain (first SIGINT/SIGTERM) waits for running leases before hard-cancelling")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug|info|warn|error")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "precision-worker:", err)
		os.Exit(1)
	}
	logger := obs.NewLogger(os.Stderr, level)
	fatal := func(err error) {
		logger.Error("fatal", obs.Str("error", err.Error()))
		os.Exit(1)
	}

	if *faults != "" {
		if err := fault.Arm(*faults); err != nil {
			fatal(err)
		}
	} else if err := fault.ArmFromEnv(); err != nil {
		fatal(err)
	}
	if fault.Enabled() {
		logger.Warn("fault injection ARMED")
	}

	if *slots < 1 {
		*slots = 1
	}
	if *lanes <= 0 {
		*lanes = runtime.GOMAXPROCS(0) / *slots
		if *lanes < 1 {
			*lanes = 1
		}
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	var archSpec *arch.Spec
	if *archName != "" {
		spec, err := arch.FindSpec(*archName)
		if err != nil {
			fatal(err)
		}
		archSpec = &spec
	}

	// Two-stage shutdown: the first signal cancels pollCtx (no new leases;
	// running ones finish and upload under continued heartbeats), the second
	// signal — or the drain grace expiring — cancels runCtx (hard-cancel).
	runCtx, hardStop := context.WithCancel(context.Background())
	defer hardStop()
	pollCtx, stopPolling := context.WithCancel(runCtx)
	defer stopPolling()
	ctx := pollCtx // registration and replica pulls stop at first signal

	var drainedAt atomic.Int64 // unix nanos of the first signal (0 = none)
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		sig := <-sigCh
		drainedAt.Store(time.Now().UnixNano())
		logger.Info("drain started; finishing running leases",
			obs.Str("signal", sig.String()), obs.Str("grace", drainGrace.String()))
		stopPolling()
		select {
		case sig = <-sigCh:
			logger.Warn("second signal; hard-cancelling runs", obs.Str("signal", sig.String()))
		case <-time.After(*drainGrace):
			logger.Warn("drain grace expired; hard-cancelling runs")
		case <-runCtx.Done():
			return // all loops already exited
		}
		hardStop()
	}()

	w := &worker{
		base:  strings.TrimRight(*coordinator, "/"),
		name:  *name,
		lanes: *lanes,
		arch:  archSpec,
		caps: dispatch.Capabilities{
			Apps:       splitList(*apps),
			Modes:      splitList(*modes),
			Slots:      *slots,
			Lanes:      *lanes,
			GoMaxProcs: runtime.GOMAXPROCS(0),
		},
		hc:     &http.Client{Timeout: 0}, // long-polls; per-request bounds below
		log:    logger,
		leases: make(map[string]*activeLease),

		mLeases: obs.Default.CounterVec("precision_worker_leases_total",
			"Leases executed on this node, by outcome.", "outcome"),
		mRunDur: obs.Default.HistogramVec("precision_worker_run_seconds",
			"Lease execution wall time on this node.", obs.DurationBuckets, "app", "mode"),
		mHeartbeats: obs.Default.Counter("precision_worker_heartbeats_total",
			"Heartbeats sent to the coordinator."),
	}

	// Replica read serving (DESIGN.md §11, tier 2): hold canonical result
	// payloads in a byte-capped store and serve them back to the
	// coordinator so hot reads scale with fleet size. Off unless asked.
	var replicaSrv *http.Server
	if *readAddr != "" {
		ln, err := net.Listen("tcp", *readAddr)
		if err != nil {
			fatal(err)
		}
		w.store = cache.NewHotTier(*replicaMax)
		w.readAddr = "http://" + ln.Addr().String()
		replicaSrv = &http.Server{Handler: w.replicaMux()}
		go replicaSrv.Serve(ln)
		logger.Info("replica read server up", obs.Str("addr", w.readAddr))
	}

	if err := w.register(ctx); err != nil {
		fatal(err)
	}
	// Printed unconditionally so scripts can pair PIDs with worker IDs.
	fmt.Printf("registered as %s with %s\n", w.workerID(), w.base)

	// Heartbeats outlive the poll context: a draining worker must keep
	// beating or the coordinator expires the leases it is trying to finish.
	hbCtx, stopHB := context.WithCancel(runCtx)
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() { defer hbWG.Done(); w.heartbeatLoop(hbCtx) }()

	var wg sync.WaitGroup
	for i := 0; i < *slots; i++ {
		wg.Add(1)
		go func(slot int) { defer wg.Done(); w.leaseLoop(pollCtx, runCtx, slot) }(i)
	}
	wg.Wait()
	stopHB()
	hbWG.Wait()

	// Graceful goodbye: deregistering requeues any leases the coordinator
	// still attributes to us, so their jobs go back on the board immediately.
	// A drained exit reports how long finishing the leases took.
	var drainSeconds float64
	if t := drainedAt.Load(); t != 0 {
		drainSeconds = time.Since(time.Unix(0, t)).Seconds()
	}
	dctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if replicaSrv != nil {
		_ = replicaSrv.Shutdown(dctx)
	}
	if err := w.deregister(dctx, drainSeconds); err != nil {
		logger.Warn("deregister", obs.Str("error", err.Error()))
	} else {
		logger.Info("deregistered", obs.Str("worker", w.workerID()),
			obs.Str("drain", time.Duration(drainSeconds*float64(time.Second)).Round(time.Millisecond).String()))
	}
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// worker is the node's coordinator client plus its table of running leases.
type worker struct {
	base     string
	name     string
	lanes    int
	arch     *arch.Spec // platform profile advertised for energy accounting
	caps     dispatch.Capabilities
	hc       *http.Client
	log      *obs.Logger
	store    *cache.HotTier // replica payload store (nil = replica reads off)
	readAddr string         // advertised base URL of the replica server

	mLeases     obs.CounterVec
	mRunDur     obs.HistogramVec
	mHeartbeats obs.Counter

	mu        sync.Mutex
	id        string
	leaseTTL  time.Duration
	heartbeat time.Duration
	pollWait  time.Duration
	leases    map[string]*activeLease
}

// activeLease is one running grant: its cancel hook (fired when the
// coordinator reports the lease expired), the solver's progress, relayed
// on heartbeats, and the worker-side span timeline, streamed back as
// partial snapshots on heartbeats so long runs stitch incrementally.
type activeLease struct {
	cancel      context.CancelFunc
	step, total atomic.Int64
	trace       *obs.Trace
}

// ckptMeter observes the final-state checkpoint as the runner streams it
// through: total bytes and the first-to-last-write wall span (the
// serialization window, not the negligible time inside Write). It tees into
// the runner's own hasher path without perturbing the bytes, and is only
// read after the run returns — single writer, no locking.
type ckptMeter struct {
	bytes       int64
	first, last time.Time
}

func (c *ckptMeter) Write(p []byte) (int, error) {
	now := time.Now()
	if c.first.IsZero() {
		c.first = now
	}
	c.last = now
	c.bytes += int64(len(p))
	return len(p), nil
}

func (c *ckptMeter) totals() (int64, time.Duration) {
	return c.bytes, c.last.Sub(c.first)
}

func (w *worker) workerID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// register announces the worker, retrying with backoff until the
// coordinator answers (it may still be booting) or ctx dies.
func (w *worker) register(ctx context.Context) error {
	backoff := 100 * time.Millisecond
	for {
		err := w.registerOnce(ctx)
		if err == nil {
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("register: %w", err)
		}
		w.log.Warn("register failed; retrying",
			obs.Str("coordinator", w.base), obs.Str("backoff", backoff.String()),
			obs.Str("error", err.Error()))
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > 3*time.Second {
			backoff = 3 * time.Second
		}
	}
}

func (w *worker) registerOnce(ctx context.Context) error {
	var resp dispatch.RegisterResponse
	// The full profile ships on every register — including the implicit
	// re-registers after a coordinator restart — so the fleet's view of
	// this node's capabilities and arch never goes stale.
	status, err := w.postJSON(ctx, "/v1/workers/register",
		dispatch.RegisterRequest{Name: w.name, Capabilities: w.caps, ReadAddr: w.readAddr, Arch: w.arch}, &resp, 5*time.Second)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return fmt.Errorf("register: coordinator answered %d", status)
	}
	ttl, _ := time.ParseDuration(resp.LeaseTTL)
	hb, _ := time.ParseDuration(resp.Heartbeat)
	poll, _ := time.ParseDuration(resp.PollWait)
	if ttl <= 0 || hb <= 0 || poll <= 0 {
		return fmt.Errorf("register: malformed cadences %+v", resp)
	}
	w.mu.Lock()
	w.id = resp.WorkerID
	w.leaseTTL, w.heartbeat, w.pollWait = ttl, hb, poll
	w.mu.Unlock()
	w.log.Info("registered",
		obs.Str("worker", resp.WorkerID), obs.Str("name", w.name),
		obs.Str("lease_ttl", ttl.String()), obs.Str("heartbeat", hb.String()))
	return nil
}

func (w *worker) deregister(ctx context.Context, drainSeconds float64) error {
	id := w.workerID()
	if id == "" {
		return nil
	}
	status, err := w.postJSON(ctx, "/v1/workers/"+id+"/deregister",
		dispatch.DeregisterRequest{DrainSeconds: drainSeconds}, nil, 2*time.Second)
	if err != nil {
		return err
	}
	if status != http.StatusOK && status != http.StatusNotFound {
		return fmt.Errorf("deregister: coordinator answered %d", status)
	}
	return nil
}

// leaseLoop is one slot: long-poll for a grant, execute it, upload, repeat.
// Polling stops at pollCtx (graceful drain); a grant already held runs on
// runCtx so a drain lets it finish while a hard stop cancels it.
func (w *worker) leaseLoop(pollCtx, runCtx context.Context, slot int) {
	sl := w.log.With(obs.Str("slot", fmt.Sprint(slot)))
	for pollCtx.Err() == nil {
		grant, err := w.lease(pollCtx)
		if err != nil {
			if pollCtx.Err() != nil {
				return
			}
			sl.Warn("lease poll failed", obs.Str("error", err.Error()))
			select {
			case <-pollCtx.Done():
				return
			case <-time.After(500 * time.Millisecond):
			}
			continue
		}
		if grant == nil {
			continue // poll expired empty; re-poll
		}
		w.runLease(runCtx, sl, grant)
	}
}

// lease long-polls once. nil grant (no error) means an empty poll. A 404
// re-registers — the coordinator restarted and forgot us.
func (w *worker) lease(ctx context.Context) (*dispatch.LeaseGrant, error) {
	w.mu.Lock()
	id, poll := w.id, w.pollWait
	w.mu.Unlock()
	var grant dispatch.LeaseGrant
	status, err := w.postJSON(ctx, "/v1/workers/lease",
		dispatch.LeaseRequest{WorkerID: id, Wait: poll.String()}, &grant, poll+5*time.Second)
	switch {
	case err != nil:
		return nil, err
	case status == http.StatusNoContent:
		return nil, nil
	case status == http.StatusNotFound:
		w.log.Warn("coordinator forgot us; re-registering", obs.Str("worker", id))
		if rerr := w.register(ctx); rerr != nil {
			return nil, rerr
		}
		return nil, nil
	case status != http.StatusOK:
		return nil, fmt.Errorf("lease: coordinator answered %d", status)
	}
	return &grant, nil
}

// runLease executes one grant and uploads its outcome. The run is cancelled
// if the coordinator reports the lease expired (a late upload would be
// rejected with 409 anyway — the job has been re-queued).
func (w *worker) runLease(ctx context.Context, sl *obs.Logger, g *dispatch.LeaseGrant) {
	ll := sl.With(obs.Str("lease", g.LeaseID), obs.Str("job", g.JobID))
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	// The worker-side timeline for this lease: rooted in the trace context
	// the grant carried, so the coordinator can stitch it under the job's
	// attempt span. Registered on the lease before the run starts so
	// heartbeats stream partial snapshots from the first beat.
	tr := obs.NewTrace(g.TraceID, "worker",
		obs.Str("worker", w.name), obs.Str("lease", g.LeaseID),
		obs.Str("parent_span", g.ParentSpan))
	al := &activeLease{cancel: cancel, trace: tr}
	w.mu.Lock()
	w.leases[g.LeaseID] = al
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.leases, g.LeaseID)
		w.mu.Unlock()
	}()

	ll.Info("lease granted",
		obs.Str("app", string(g.Spec.App)), obs.Str("mode", g.Spec.Mode),
		obs.Str("spec_hash", g.SpecHash), obs.Str("attempt", fmt.Sprint(g.Attempt)))
	started := time.Now()
	solve := tr.Root().Child("solve",
		obs.Str("app", string(g.Spec.App)), obs.Str("mode", g.Spec.Mode))
	var ckpt ckptMeter
	res, err := runner.Run(runCtx, g.Spec, runner.RunOpts{
		Workers:    w.lanes,
		Checkpoint: &ckpt,
		Progress: func(step, total int) {
			al.step.Store(int64(step))
			al.total.Store(int64(total))
		},
	})
	if err == nil {
		for _, p := range res.Phases {
			solve.AggregateChild("phase:"+p.Name, time.Duration(p.Seconds*float64(time.Second)))
		}
		solve.Annotate(obs.Str("outcome", "ok"))
	} else {
		solve.Annotate(obs.Str("outcome", "error"), obs.Str("error", err.Error()))
	}
	solve.End()
	if cb, cd := ckpt.totals(); cb > 0 {
		tr.Root().AggregateChild("checkpoint", cd,
			obs.Str("bytes", fmt.Sprint(cb)))
	}
	w.mRunDur.With(string(g.Spec.App), g.Spec.Mode).ObserveSince(started)
	if err == nil && fault.Hit("worker.slow") {
		// Straggler simulator: inflate the wall time after the run so the
		// result stays bit-identical — only the lease looks slow. x:<f>
		// stretches total time to f × the real duration.
		if factor, ok := fault.Param("worker.slow"); ok && factor > 1 {
			pad := time.Duration(float64(time.Since(started)) * (factor - 1))
			ll.Warn("run inflated (fault injection)",
				obs.Str("factor", fmt.Sprint(factor)), obs.Str("pad", pad.Round(time.Millisecond).String()))
			select {
			case <-runCtx.Done():
			case <-time.After(pad):
			}
		}
	}

	req := dispatch.CompleteRequest{LeaseID: g.LeaseID}
	if err != nil {
		req.Error = err.Error()
		req.ErrorKind = runner.Classify(err).String()
		ll.Warn("run failed", obs.Str("kind", req.ErrorKind), obs.Str("error", req.Error))
	} else {
		payload, merr := json.Marshal(res)
		if merr != nil {
			req.Error = fmt.Sprintf("marshal result: %v", merr)
			req.ErrorKind = runner.KindPermanent.String()
		} else {
			req.Result = payload
			ll.Info("run done",
				obs.Str("state", res.StateHash),
				obs.Str("wall", time.Since(started).Round(time.Millisecond).String()))
		}
	}
	outcome := "ok"
	if req.Error != "" {
		outcome = "error"
	}
	w.mLeases.With(outcome).Inc()
	// The final timeline travels beside the result, never inside it — the
	// uploaded payload stays the byte-identical deterministic document.
	tr.Root().Annotate(obs.Str("outcome", outcome))
	tr.Root().End()
	td := tr.Snapshot()
	req.Trace = &td
	if cerr := w.complete(ctx, req); cerr != nil {
		ll.Warn("completion not accepted", obs.Str("error", cerr.Error()))
	} else if req.Result != nil && w.store != nil {
		// Replicate the *canonical* payload, not our upload: the scheduler
		// re-marshals the result (escalations, trace) before caching, so
		// the cached bytes differ from req.Result. Pull them back.
		w.pullReplica(ctx, ll, g.SpecHash)
	}
}

// pullReplica fetches the coordinator's canonical cached payload for hash
// and admits it to the replica store. The cache write happens after our
// complete round-trip returns, so poll briefly; a miss is harmless — the
// coordinator just won't route replica reads here for this hash.
func (w *worker) pullReplica(ctx context.Context, ll *obs.Logger, hash string) {
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return
			case <-time.After(100 * time.Millisecond):
			}
		}
		payload, digest, ok := w.fetchResult(ctx, hash)
		if !ok {
			continue
		}
		if digest != "" {
			sum := sha256.Sum256(payload)
			if hex.EncodeToString(sum[:]) != digest {
				ll.Warn("replica pull digest mismatch; dropped", obs.Str("spec_hash", hash))
				return
			}
		}
		w.store.Put(hash, payload)
		ll.Debug("replica stored", obs.Str("spec_hash", hash),
			obs.Str("bytes", fmt.Sprint(len(payload))))
		return
	}
	ll.Debug("replica pull gave up", obs.Str("spec_hash", hash))
}

func (w *worker) fetchResult(ctx context.Context, hash string) (payload []byte, digest string, ok bool) {
	rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, w.base+"/v1/results/"+hash, nil)
	if err != nil {
		return nil, "", false
	}
	resp, err := w.hc.Do(req)
	if err != nil {
		return nil, "", false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil || len(body) == 0 {
		return nil, "", false
	}
	return body, resp.Header.Get("X-Payload-SHA256"), true
}

// replicaMux serves GET /replica/{hash}: the stored canonical payload, or
// 404. The coordinator re-verifies the digest on its side, so this handler
// stays trivially dumb. The same mux exposes the worker's own Prometheus
// exposition at GET /metrics — the scrape target the coordinator federates
// into GET /metrics/fleet.
func (w *worker) replicaMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /replica/{hash}", func(rw http.ResponseWriter, r *http.Request) {
		payload, ok := w.store.Get(r.PathValue("hash"))
		if !ok {
			http.NotFound(rw, r)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		rw.Write(payload)
	})
	mux.Handle("GET /metrics", obs.Default.Handler())
	return mux
}

// complete uploads a terminal state with a small transport-level retry.
// 409 (lease expired; job re-queued elsewhere) and 422 (payload rejected)
// are final — the coordinator has already decided the attempt's fate.
func (w *worker) complete(ctx context.Context, req dispatch.CompleteRequest) error {
	id := w.workerID()
	var last error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				// Shutting down: one last try on a background context so a
				// finished result is not thrown away with the process.
			case <-time.After(time.Duration(attempt) * 200 * time.Millisecond):
			}
		}
		sendCtx := ctx
		if ctx.Err() != nil {
			var cancel context.CancelFunc
			sendCtx, cancel = context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
		}
		status, err := w.postJSON(sendCtx, "/v1/workers/"+id+"/complete", req, nil, 10*time.Second)
		switch {
		case err != nil:
			last = err
			continue
		case status == http.StatusOK:
			return nil
		case status == http.StatusConflict:
			return errors.New("lease expired before upload; the job was re-queued")
		case status == http.StatusUnprocessableEntity:
			return errors.New("coordinator rejected the payload")
		case status == http.StatusNotFound:
			return errors.New("coordinator no longer knows this worker")
		default:
			last = fmt.Errorf("coordinator answered %d", status)
		}
	}
	return fmt.Errorf("upload failed after retries: %w", last)
}

// heartbeatLoop reports all active leases at the coordinator's cadence and
// cancels runs whose leases the coordinator has expired. The fault point
// "worker.heartbeat.drop" suppresses sends — a partition simulator: the run
// continues while the coordinator's reaper expires the lease.
func (w *worker) heartbeatLoop(ctx context.Context) {
	w.mu.Lock()
	cadence := w.heartbeat
	w.mu.Unlock()
	t := time.NewTicker(cadence)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		w.mu.Lock()
		id := w.id
		// Held is the full replacement set each beat: the coordinator's
		// read index mirrors the store exactly, evictions included.
		hb := dispatch.HeartbeatRequest{Held: w.store.Keys()}
		held := make(map[string]*activeLease, len(w.leases))
		for lid, al := range w.leases {
			held[lid] = al
			lp := dispatch.LeaseProgress{
				LeaseID: lid, Step: al.step.Load(), Total: al.total.Load(),
			}
			if al.trace != nil {
				// Partial snapshot: long runs stream their spans so the
				// coordinator's stitched view grows while they execute.
				td := al.trace.Snapshot()
				lp.Trace = &td
			}
			hb.Leases = append(hb.Leases, lp)
		}
		w.mu.Unlock()
		if fault.Hit("worker.heartbeat.drop") {
			w.log.Warn("heartbeat dropped (fault injection)", obs.Str("worker", id))
			continue
		}
		if fault.Hit("worker.flap") {
			// Intermittent unreachability: armed e:<k>, every k-th beat is
			// swallowed, which the coordinator scores as a flap.
			w.log.Warn("heartbeat flapped (fault injection)", obs.Str("worker", id))
			continue
		}
		w.mHeartbeats.Inc()
		var resp dispatch.HeartbeatResponse
		status, err := w.postJSON(ctx, "/v1/workers/"+id+"/heartbeat", hb, &resp, 5*time.Second)
		if err != nil {
			if ctx.Err() == nil {
				w.log.Warn("heartbeat failed", obs.Str("error", err.Error()))
			}
			continue
		}
		if status == http.StatusNotFound {
			w.log.Warn("coordinator forgot us; re-registering", obs.Str("worker", id))
			_ = w.register(ctx)
			continue
		}
		for _, lid := range resp.Expired {
			if al, ok := held[lid]; ok {
				w.log.Warn("lease expired by coordinator; cancelling run", obs.Str("lease", lid))
				al.cancel()
			}
		}
	}
}

// postJSON POSTs a JSON body and decodes a JSON reply into out (when
// non-nil and the reply has one). Returns the HTTP status.
func (w *worker) postJSON(ctx context.Context, path string, in, out any, timeout time.Duration) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.hc.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, fmt.Errorf("decode %s reply: %w", path, err)
		}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
