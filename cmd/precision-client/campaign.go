package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/runner"
	"repro/internal/serve/campaign"
)

// readCampaignSpec loads a campaign spec file ('-' for stdin).
func readCampaignSpec(path string) (campaign.Spec, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return campaign.Spec{}, err
		}
		defer f.Close()
		r = f
	}
	var spec campaign.Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return campaign.Spec{}, fmt.Errorf("decode %s: %w", path, err)
	}
	return spec, nil
}

// runCampaign submits a campaign spec file to POST /v1/campaigns, follows
// the NDJSON aggregate stream until the campaign is terminal, then prints
// the final view. With -json the raw aggregate lines pass through
// verbatim; otherwise each becomes one human-readable progress line.
func runCampaign(addr, path string, retries int, raw bool) {
	spec, err := readCampaignSpec(path)
	if err != nil {
		log.Fatal(err)
	}
	v, err := submitCampaign(addr, spec, retries)
	if err != nil {
		log.Fatalf("submit campaign: %v", err)
	}
	fmt.Fprintf(os.Stderr, "campaign %s submitted: tenant=%s total=%d\n",
		v.ID, v.Tenant, v.Aggregates.Total)

	// The stream ends at the terminal aggregates; a dropped connection
	// (daemon restart mid-campaign) re-opens it under -retry, and the
	// status probe below tells stream-EOF apart from daemon-shutdown.
	for {
		err := streamCampaign(addr, v.ID, raw)
		final, ferr := fetchCampaign(addr, v.ID, retries, false)
		if ferr == nil && final.Status != campaign.StatusRunning {
			break
		}
		if err != nil && retries <= 0 {
			log.Fatalf("stream campaign %s: %v", v.ID, err)
		}
		retries--
		time.Sleep(500 * time.Millisecond)
	}

	final, err := fetchCampaign(addr, v.ID, retries, true)
	if err != nil {
		log.Fatalf("fetch campaign %s: %v", v.ID, err)
	}
	a := final.Aggregates
	fmt.Printf("campaign %s %s: total=%d completed=%d deduped=%d recovered=%d failed=%d\n",
		final.ID, final.Status, a.Total, a.Completed, a.Deduped, a.Recovered, a.Failed)
	if a.MassError != nil {
		fmt.Printf("mass_error: n=%d p50=%.3e p90=%.3e p99=%.3e max=%.3e\n",
			a.MassError.Count, a.MassError.P50, a.MassError.P90, a.MassError.P99, a.MassError.Max)
	}
	if a.LineCutDelta != nil {
		fmt.Printf("line_cut_delta: n=%d mean=%.3e max=%.3e\n",
			a.LineCutDelta.Count, a.LineCutDelta.Mean, a.LineCutDelta.Max)
	}
	for _, mode := range []string{"half", "min", "mixed", "full"} {
		ms, ok := a.PerMode[mode]
		if !ok {
			continue
		}
		line := fmt.Sprintf("mode %-5s jobs=%d completed=%d failed=%d escalation_rate=%.3f",
			mode, ms.Jobs, ms.Completed, ms.Failed, ms.EscalationRate)
		if ms.Energy != nil {
			line += fmt.Sprintf(" joules=%.3g cost=$%.3g", ms.Energy.Joules, ms.Energy.CostDollars)
		}
		fmt.Println(line)
	}
	if e := a.Energy; e != nil {
		// The fleet's modeled $/experiment: arch profile × deterministic
		// counters, summed over every accounted job in the campaign.
		perJob := 0.0
		if e.Jobs > 0 {
			perJob = e.CostDollars / float64(e.Jobs)
		}
		fmt.Printf("energy: jobs=%d joules=%.4g cost=$%.4g ($%.3g/experiment)\n",
			e.Jobs, e.Joules, e.CostDollars, perJob)
	}
	if a.ResultDigest != "" {
		fmt.Printf("result_digest=%s\n", a.ResultDigest)
	}
	if a.Failed > 0 {
		log.Fatalf("%d of %d campaign jobs failed", a.Failed, a.Total)
	}
	if final.Status != campaign.StatusCompleted {
		log.Fatalf("campaign %s ended %s", final.ID, final.Status)
	}
}

func submitCampaign(addr string, spec campaign.Spec, retries int) (campaign.View, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return campaign.View{}, err
	}
	var v campaign.View
	err = withRetry(retries, func() (bool, error) {
		resp, err := http.Post(addr+"/v1/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return true, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// Over-budget backpressure: resubmit once live campaigns drain.
			err := fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
			if secs, aerr := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); aerr == nil && secs > 0 {
				return true, &retryAfter{err: err, wait: time.Duration(secs) * time.Second}
			}
			return true, err
		}
		if resp.StatusCode != http.StatusAccepted {
			return resp.StatusCode >= 500, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		}
		return false, json.Unmarshal(data, &v)
	})
	return v, err
}

// streamCampaign follows one NDJSON aggregate stream to EOF.
func streamCampaign(addr, id string, raw bool) error {
	resp, err := http.Get(addr + "/v1/campaigns/" + id + "/stream")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if raw {
			os.Stdout.Write(line)
			fmt.Println()
			continue
		}
		var a campaign.Aggregates
		if err := json.Unmarshal(line, &a); err != nil {
			return fmt.Errorf("decode aggregate line: %w", err)
		}
		fmt.Fprintf(os.Stderr, "  %s: expanded=%d/%d running=%d completed=%d deduped=%d failed=%d\n",
			id, a.Expanded, a.Total, a.Running, a.Completed, a.Deduped, a.Failed)
	}
	return sc.Err()
}

func fetchCampaign(addr, id string, retries int, jobs bool) (campaign.View, error) {
	url := addr + "/v1/campaigns/" + id
	if jobs {
		url += "?jobs=1"
	}
	var v campaign.View
	err := withRetry(retries, func() (bool, error) {
		resp, err := http.Get(url)
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return true, err
		}
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode >= 500, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		}
		return false, json.Unmarshal(data, &v)
	})
	return v, err
}

// runGrid expands a campaign spec file client-side — the legacy sweeping
// loop campaigns replace — submitting every index through POST /v1/jobs
// and digesting the "spec_hash state_hash" pairs exactly as the server
// does, so its result_digest is the bit-match reference for an equivalent
// POST /v1/campaigns run.
func runGrid(addr, path string, retries int, raw bool) {
	spec, err := readCampaignSpec(path)
	if err != nil {
		log.Fatal(err)
	}
	spec, err = spec.Normalized()
	if err != nil {
		log.Fatal(err)
	}
	gen, err := campaign.NewGenerator(spec.Generator)
	if err != nil {
		log.Fatal(err)
	}

	views := make([]viewAt, 0, gen.Total())
	for i := int64(0); i < gen.Total(); i++ {
		jobSpec, err := gen.At(i)
		if err != nil {
			log.Fatalf("expand index %d: %v", i, err)
		}
		v, err := submit(addr, jobSpec, retries)
		if err != nil {
			log.Fatalf("submit index %d (%s/%s): %v", i, jobSpec.App, jobSpec.Mode, err)
		}
		views = append(views, viewAt{index: i, id: v.ID, specHash: v.SpecHash, cached: v.Cached})
	}

	pairs := make([]string, 0, len(views))
	failed, cached := 0, 0
	for _, v := range views {
		if v.cached {
			cached++
		}
		payload, _, err := fetchResult(addr, v.id, retries, nil, "")
		if err != nil {
			failed++
			fmt.Printf("%s  index=%d  FAILED: %v\n", v.id, v.index, err)
			continue
		}
		if raw {
			os.Stdout.Write(payload)
			fmt.Println()
		}
		var res runner.Result
		if err := json.Unmarshal(payload, &res); err != nil {
			log.Fatalf("%s: decode result: %v", v.id, err)
		}
		if !raw {
			fmt.Fprintf(os.Stderr, "%s  index=%-4d %-5s/%-5s cached=%-5v state=%s\n",
				v.id, v.index, res.Spec.App, res.Spec.Mode, v.cached, res.StateHash[:12])
		}
		if res.StateHash != "" {
			pairs = append(pairs, v.specHash+" "+res.StateHash)
		}
	}
	fmt.Printf("grid %s: total=%d completed=%d cached=%d failed=%d\n",
		gen.Kind(), len(views), len(views)-failed, cached, failed)
	fmt.Printf("result_digest=%s\n", campaign.ResultDigest(pairs))
	if failed > 0 {
		log.Fatalf("%d of %d grid jobs failed", failed, len(views))
	}
}

// viewAt pairs a submitted job view with its generator index.
type viewAt struct {
	index    int64
	id       string
	specHash string
	cached   bool
}
