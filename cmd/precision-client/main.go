// Command precision-client submits experiments to a precisiond daemon and
// waits for their results.
//
// Usage:
//
//	precision-client -spec spec.json            # one spec from a file
//	echo '{"app":"clamr",...}' | precision-client -spec -
//	precision-client -sweep quick               # replay the full paper sweep
//	precision-client -sweep quick -json         # raw result payloads
//	precision-client -sweep quick -retry 10     # ride out daemon restarts
//	precision-client -spec spec.json -trace     # print the job's span timeline
//	precision-client -campaign grid.json        # server-side campaign + live aggregates
//	precision-client -grid grid.json            # same file, client-side expansion
//	precision-client -spec spec.json -max-mass-error 1e-7   # accuracy-budgeted auto mode
//
// -max-mass-error / -max-linecut-linf rewrite each -spec/-sweep submission
// to mode "auto" with that accuracy budget: the daemon resolves the
// cheapest precision mode its fleet-learned evidence shows meets the
// budget (falling back to full until evidence exists). Summary lines for
// auto submissions render the resolution ("auto→half") and a final line
// totals the modeled joules/dollars the tuned modes saved against the
// full-precision baseline.
//
// Each completed job prints one summary line; cached=true marks results the
// daemon served from its content-addressed cache without recomputing.
// With -trace, the client fetches GET /v1/jobs/{id}/trace after each result
// and prints a human-readable timeline: one line per span, indented by
// nesting, with offset, duration and attributes — queue wait, each attempt,
// retry backoffs and precision escalations included.
// With -retry N, connection failures, 5xx responses (a restarting or
// briefly degraded daemon) and 429 backpressure (a full queue; the
// server's Retry-After hint is honored) are retried up to N times with
// linear backoff — the knob chaos tests lean on.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/serve/queue"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("precision-client: ")

	var (
		addr      = flag.String("addr", "http://127.0.0.1:7717", "precisiond base URL")
		specPath  = flag.String("spec", "", "experiment spec JSON file ('-' for stdin)")
		sweep     = flag.String("sweep", "", "submit the full paper sweep at this scale (quick|standard|paper)")
		raw       = flag.Bool("json", false, "print raw result payloads instead of summary lines")
		retries   = flag.Int("retry", 0, "retry connection failures and 5xx responses this many times")
		trace     = flag.Bool("trace", false, "print each job's span timeline after its result")
		replayDir = flag.String("replay-cache", "", "cache result payloads + ETags in this directory and revalidate with If-None-Match on replay")
		campPath  = flag.String("campaign", "", "submit a campaign spec JSON file server-side (POST /v1/campaigns) and render the streamed aggregates")
		gridPath  = flag.String("grid", "", "expand a campaign spec file client-side, one POST /v1/jobs per index — the sweep loop campaigns replace")
		maxMass   = flag.Float64("max-mass-error", 0, "submit -spec/-sweep as mode \"auto\" with this relative mass-error budget (0 = off)")
		maxLinf   = flag.Float64("max-linecut-linf", 0, "submit -spec/-sweep as mode \"auto\" with this line-cut L∞ budget vs the full-precision reference (0 = off)")
	)
	flag.Parse()

	if *campPath != "" || *gridPath != "" {
		if *specPath != "" || *sweep != "" || (*campPath != "" && *gridPath != "") {
			log.Fatal("-campaign/-grid are mutually exclusive with each other and with -spec/-sweep")
		}
		if *campPath != "" {
			runCampaign(*addr, *campPath, *retries, *raw)
		} else {
			runGrid(*addr, *gridPath, *retries, *raw)
		}
		return
	}

	var rc *replayCache
	if *replayDir != "" {
		var err error
		if rc, err = openReplayCache(*replayDir); err != nil {
			log.Fatal(err)
		}
	}

	var specs []runner.ExperimentSpec
	switch {
	case *specPath != "" && *sweep != "":
		log.Fatal("-spec and -sweep are mutually exclusive")
	case *specPath != "":
		spec, err := readSpec(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		specs = []runner.ExperimentSpec{spec}
	case *sweep != "":
		scale, err := repro.ParseScale(*sweep)
		if err != nil {
			log.Fatal(err)
		}
		specs = runner.SweepSpecs(scale)
	default:
		log.Fatal("nothing to submit: pass -spec or -sweep")
	}

	// An accuracy budget turns the submission over to the daemon's
	// autotuner: mode "auto", budgets attached, resolution server-side.
	if *maxMass > 0 || *maxLinf > 0 {
		for i := range specs {
			specs[i].Mode = runner.ModeAuto
			specs[i].MaxMassError = *maxMass
			specs[i].MaxLinecutLinf = *maxLinf
		}
	}

	// Submit everything up front — identical specs collapse onto one job
	// server-side — then collect results in submission order.
	views := make([]queue.View, len(specs))
	for i, spec := range specs {
		v, err := submit(*addr, spec, *retries)
		if err != nil {
			log.Fatalf("submit %s/%s: %v", spec.App, spec.Mode, err)
		}
		views[i] = v
	}
	failed, revalidated, tuned := 0, 0, 0
	savedJoules, savedDollars := 0.0, 0.0
	for _, v := range views {
		payload, notModified, err := fetchResult(*addr, v.ID, *retries, rc, v.SpecHash)
		if notModified {
			revalidated++
		}
		if err != nil {
			failed++
			fmt.Printf("%s  %s/%s  FAILED: %v\n", v.ID, v.Spec.App, v.Spec.Mode, err)
			continue
		}
		if *raw {
			os.Stdout.Write(payload)
			fmt.Println()
			if *trace {
				td, err := fetchTrace(*addr, v.ID, *retries)
				if err != nil {
					log.Fatalf("%s: fetch trace: %v", v.ID, err)
				}
				printTrace(os.Stdout, td)
			}
			continue
		}
		var res runner.Result
		if err := json.Unmarshal(payload, &res); err != nil {
			log.Fatalf("%s: decode result: %v", v.ID, err)
		}
		mode := res.Spec.Mode
		if v.TunedMode != "" {
			// The view reports savings only once the job completed, so
			// re-snapshot now that the result is in hand.
			if fv, err := fetchView(*addr, v.ID, *retries); err == nil {
				v = fv
			}
			mode = "auto→" + v.TunedMode
			tuned++
			savedJoules += v.SavedJoules
			savedDollars += v.SavedDollars
		}
		fmt.Printf("%s  %-5s/%-5s  steps=%-4d cached=%-5v state=%s  %.3fs\n",
			v.ID, res.Spec.App, mode, res.Steps, v.Cached, res.StateHash[:12], res.WallSeconds)
		if *trace {
			td, err := fetchTrace(*addr, v.ID, *retries)
			if err != nil {
				log.Fatalf("%s: fetch trace: %v", v.ID, err)
			}
			printTrace(os.Stdout, td)
		}
	}
	if rc != nil {
		// stderr so -json stdout stays parseable; smoke tests grep this.
		fmt.Fprintf(os.Stderr, "replay-cache: %d/%d results revalidated (304)\n", revalidated, len(views))
	}
	if tuned > 0 {
		// Modeled savings vs running every tuned job at full precision.
		perJob := savedDollars / float64(tuned)
		fmt.Printf("autotune: jobs=%d saved_joules=%.4g saved=$%.4g ($%.3g/experiment saved)\n",
			tuned, savedJoules, savedDollars, perJob)
	}
	if failed > 0 {
		log.Fatalf("%d of %d jobs failed", failed, len(views))
	}
}

func readSpec(path string) (runner.ExperimentSpec, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return runner.ExperimentSpec{}, err
		}
		defer f.Close()
		r = f
	}
	var spec runner.ExperimentSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return runner.ExperimentSpec{}, fmt.Errorf("decode %s: %w", path, err)
	}
	return spec, nil
}

// retryAfter tags an error with the server's Retry-After hint (429
// backpressure): withRetry sleeps at least this long before the next try.
type retryAfter struct {
	err  error
	wait time.Duration
}

func (r *retryAfter) Error() string { return r.err.Error() }
func (r *retryAfter) Unwrap() error { return r.err }

// withRetry runs fn up to 1+retries times, retrying connection errors, 5xx
// responses and 429 backpressure (retryable=true) with linear backoff —
// stretched to the server's Retry-After hint when one came back. Any other
// 4xx is final: resubmitting a bad spec cannot fix it.
func withRetry(retries int, fn func() (retryable bool, err error)) error {
	var err error
	for attempt := 0; ; attempt++ {
		var retryable bool
		retryable, err = fn()
		if err == nil || !retryable || attempt >= retries {
			return err
		}
		wait := time.Duration(attempt+1) * 200 * time.Millisecond
		var ra *retryAfter
		if errors.As(err, &ra) && ra.wait > wait {
			wait = ra.wait
		}
		time.Sleep(wait)
	}
}

func submit(addr string, spec runner.ExperimentSpec, retries int) (queue.View, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return queue.View{}, err
	}
	var v queue.View
	err = withRetry(retries, func() (bool, error) {
		resp, err := http.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return true, err // connection error: daemon may be restarting
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return true, err
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			// Backpressure, not failure: the queue is full. Honor the
			// server's Retry-After pacing under -retry.
			err := fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
			if secs, aerr := strconv.Atoi(strings.TrimSpace(resp.Header.Get("Retry-After"))); aerr == nil && secs > 0 {
				return true, &retryAfter{err: err, wait: time.Duration(secs) * time.Second}
			}
			return true, err
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return resp.StatusCode >= 500, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		}
		return false, json.Unmarshal(data, &v)
	})
	return v, err
}

// fetchView re-reads one job's view — the post-completion snapshot carries
// the autotuner's savings figures, which the submit-time view cannot.
func fetchView(addr, id string, retries int) (queue.View, error) {
	var v queue.View
	err := withRetry(retries, func() (bool, error) {
		resp, err := http.Get(addr + "/v1/jobs/" + id)
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return true, err
		}
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode >= 500, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		}
		return false, json.Unmarshal(data, &v)
	})
	return v, err
}

func fetchTrace(addr, id string, retries int) (obs.TraceData, error) {
	var td obs.TraceData
	err := withRetry(retries, func() (bool, error) {
		resp, err := http.Get(addr + "/v1/jobs/" + id + "/trace")
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return true, err
		}
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode >= 500, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		}
		return false, json.Unmarshal(data, &td)
	})
	return td, err
}

// printTrace renders a span timeline as an indented tree, one line per
// span: offset from the trace start, duration, name, attributes. Aggregate
// spans (solver phase totals) and still-open spans are marked.
func printTrace(w io.Writer, td obs.TraceData) {
	depth := make([]int, len(td.Spans))
	for i, sp := range td.Spans {
		if sp.Parent >= 0 && sp.Parent < i {
			depth[i] = depth[sp.Parent] + 1
		}
	}
	fmt.Fprintf(w, "  trace %s  started %s  total %s\n",
		td.JobID, td.StartedAt.Format(time.RFC3339Nano), fmtNs(td.DurationNs))
	for i, sp := range td.Spans {
		var marks []string
		for _, a := range sp.Attrs {
			marks = append(marks, a.Key+"="+a.Value)
		}
		flag := " "
		if sp.Open {
			flag = "…"
		}
		fmt.Fprintf(w, "  %10s %10s %s %s%s %s\n",
			"+"+fmtNs(sp.StartNs), fmtNs(sp.DurationNs), flag,
			strings.Repeat("  ", depth[i]), sp.Name, strings.Join(marks, " "))
	}
}

// fmtNs renders a nanosecond count compactly (µs under 1ms, ms under 1s).
func fmtNs(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.3fs", d.Seconds())
	}
}

// fetchResult downloads one job's result payload. With a replay cache and
// a prior ETag for the spec hash it revalidates instead: If-None-Match →
// 304 means the cached bytes are current and zero body moves.
func fetchResult(addr, id string, retries int, rc *replayCache, specHash string) (payload []byte, notModified bool, err error) {
	var cached []byte
	var etag string
	if rc != nil && specHash != "" {
		cached, etag = rc.load(specHash)
	}
	err = withRetry(retries, func() (bool, error) {
		req, err := http.NewRequest(http.MethodGet, addr+"/v1/jobs/"+id+"/result", nil)
		if err != nil {
			return false, err
		}
		if etag != "" && cached != nil {
			req.Header.Set("If-None-Match", etag)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return true, err
		}
		if resp.StatusCode == http.StatusNotModified {
			payload, notModified = cached, true
			return false, nil
		}
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode >= 500, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		}
		payload = data
		if rc != nil && specHash != "" {
			if tag := resp.Header.Get("ETag"); tag != "" {
				if serr := rc.store(specHash, data, tag); serr != nil {
					log.Printf("replay-cache store %s: %v", specHash, serr)
				}
			}
		}
		return false, nil
	})
	return payload, notModified, err
}

// replayCache persists result payloads and their ETags per spec hash:
// <dir>/<spechash>.res and <dir>/<spechash>.etag, written atomically so a
// killed client never leaves a payload/ETag pair out of sync enough to
// matter (a stale or orphaned ETag just costs one full 200 re-download).
type replayCache struct{ dir string }

func openReplayCache(dir string) (*replayCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("replay-cache: %w", err)
	}
	return &replayCache{dir: dir}, nil
}

func (rc *replayCache) load(specHash string) (payload []byte, etag string) {
	payload, err := os.ReadFile(rc.path(specHash, ".res"))
	if err != nil || len(payload) == 0 {
		return nil, ""
	}
	tag, err := os.ReadFile(rc.path(specHash, ".etag"))
	if err != nil {
		return nil, ""
	}
	return payload, strings.TrimSpace(string(tag))
}

func (rc *replayCache) store(specHash string, payload []byte, etag string) error {
	if err := writeFileAtomic(rc.path(specHash, ".res"), payload); err != nil {
		return err
	}
	return writeFileAtomic(rc.path(specHash, ".etag"), []byte(etag+"\n"))
}

func (rc *replayCache) path(specHash, ext string) string {
	return rc.dir + string(os.PathSeparator) + specHash + ext
}

func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
