// Command precision-client submits experiments to a precisiond daemon and
// waits for their results.
//
// Usage:
//
//	precision-client -spec spec.json            # one spec from a file
//	echo '{"app":"clamr",...}' | precision-client -spec -
//	precision-client -sweep quick               # replay the full paper sweep
//	precision-client -sweep quick -json         # raw result payloads
//	precision-client -sweep quick -retry 10     # ride out daemon restarts
//
// Each completed job prints one summary line; cached=true marks results the
// daemon served from its content-addressed cache without recomputing.
// With -retry N, connection failures and 5xx responses (a restarting or
// briefly degraded daemon) are retried up to N times with linear backoff —
// the knob chaos tests lean on.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"repro"
	"repro/internal/runner"
	"repro/internal/serve/queue"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("precision-client: ")

	var (
		addr     = flag.String("addr", "http://127.0.0.1:7717", "precisiond base URL")
		specPath = flag.String("spec", "", "experiment spec JSON file ('-' for stdin)")
		sweep    = flag.String("sweep", "", "submit the full paper sweep at this scale (quick|standard|paper)")
		raw      = flag.Bool("json", false, "print raw result payloads instead of summary lines")
		retries  = flag.Int("retry", 0, "retry connection failures and 5xx responses this many times")
	)
	flag.Parse()

	var specs []runner.ExperimentSpec
	switch {
	case *specPath != "" && *sweep != "":
		log.Fatal("-spec and -sweep are mutually exclusive")
	case *specPath != "":
		spec, err := readSpec(*specPath)
		if err != nil {
			log.Fatal(err)
		}
		specs = []runner.ExperimentSpec{spec}
	case *sweep != "":
		scale, err := repro.ParseScale(*sweep)
		if err != nil {
			log.Fatal(err)
		}
		specs = runner.SweepSpecs(scale)
	default:
		log.Fatal("nothing to submit: pass -spec or -sweep")
	}

	// Submit everything up front — identical specs collapse onto one job
	// server-side — then collect results in submission order.
	views := make([]queue.View, len(specs))
	for i, spec := range specs {
		v, err := submit(*addr, spec, *retries)
		if err != nil {
			log.Fatalf("submit %s/%s: %v", spec.App, spec.Mode, err)
		}
		views[i] = v
	}
	failed := 0
	for _, v := range views {
		payload, err := fetchResult(*addr, v.ID, *retries)
		if err != nil {
			failed++
			fmt.Printf("%s  %s/%s  FAILED: %v\n", v.ID, v.Spec.App, v.Spec.Mode, err)
			continue
		}
		if *raw {
			os.Stdout.Write(payload)
			fmt.Println()
			continue
		}
		var res runner.Result
		if err := json.Unmarshal(payload, &res); err != nil {
			log.Fatalf("%s: decode result: %v", v.ID, err)
		}
		fmt.Printf("%s  %-5s/%-5s  steps=%-4d cached=%-5v state=%s  %.3fs\n",
			v.ID, res.Spec.App, res.Spec.Mode, res.Steps, v.Cached, res.StateHash[:12], res.WallSeconds)
	}
	if failed > 0 {
		log.Fatalf("%d of %d jobs failed", failed, len(views))
	}
}

func readSpec(path string) (runner.ExperimentSpec, error) {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return runner.ExperimentSpec{}, err
		}
		defer f.Close()
		r = f
	}
	var spec runner.ExperimentSpec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return runner.ExperimentSpec{}, fmt.Errorf("decode %s: %w", path, err)
	}
	return spec, nil
}

// withRetry runs fn up to 1+retries times, retrying connection errors and
// 5xx responses (retryable=true) with linear backoff. A 4xx is final —
// resubmitting a bad spec cannot fix it.
func withRetry(retries int, fn func() (retryable bool, err error)) error {
	var err error
	for attempt := 0; ; attempt++ {
		var retryable bool
		retryable, err = fn()
		if err == nil || !retryable || attempt >= retries {
			return err
		}
		time.Sleep(time.Duration(attempt+1) * 200 * time.Millisecond)
	}
}

func submit(addr string, spec runner.ExperimentSpec, retries int) (queue.View, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return queue.View{}, err
	}
	var v queue.View
	err = withRetry(retries, func() (bool, error) {
		resp, err := http.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			return true, err // connection error: daemon may be restarting
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return true, err
		}
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			return resp.StatusCode >= 500, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		}
		return false, json.Unmarshal(data, &v)
	})
	return v, err
}

func fetchResult(addr, id string, retries int) ([]byte, error) {
	var payload []byte
	err := withRetry(retries, func() (bool, error) {
		resp, err := http.Get(addr + "/v1/jobs/" + id + "/result")
		if err != nil {
			return true, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return true, err
		}
		if resp.StatusCode != http.StatusOK {
			return resp.StatusCode >= 500, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
		}
		payload = data
		return false, nil
	})
	return payload, err
}
